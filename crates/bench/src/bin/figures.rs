//! `figures` — regenerate any table or figure from the PreTE paper.
//!
//! ```text
//! Usage: figures <experiment|all> [--full] [--json DIR]
//!
//! Experiments:
//!   fig1a fig1b fig1c fig237 fig4a fig4b fig5a fig5b fig6 table1
//!   fig11 fig12 fig13 table4 table5 fig14 fig15 fig16 fig17 fig18
//!   fig19 fig20 table67 table8
//! ```
//!
//! `--full` runs the paper-scale sweeps (minutes); the default quick
//! scope finishes in seconds per experiment. `--json DIR` additionally
//! dumps machine-readable results.

use prete_bench::{availability, example3node, granularity, measurement, prediction, runtime, Scope};
use prete_core::estimator::TrueConditionals;
use prete_core::prelude::*;
use prete_sim::production::{replay_production_case, ProductionScenario};
use prete_sim::uncertainty::uncertainty_experiment;
use prete_topology::topologies;
use serde::Serialize;
use std::io::Write;

fn emit<T: Serialize>(name: &str, json_dir: Option<&str>, value: &T) {
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let mut f = std::fs::File::create(&path).expect("create json file");
        let s = serde_json::to_string_pretty(value).expect("serialize");
        f.write_all(s.as_bytes()).expect("write json");
        println!("  [json → {path}]");
    }
}

fn curve_preview(points: &[(f64, f64)]) -> String {
    points
        .iter()
        .map(|(x, y)| format!("({x:.2}, {y:.5})"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[allow(clippy::too_many_lines)]
fn run(name: &str, scope: Scope, json: Option<&str>) {
    let nn_epochs = if scope == Scope::Full { 120 } else { 40 };
    match name {
        "fig1a" => {
            let traces = measurement::fig1a_weekly_traces();
            println!("Figure 1(a): weekly loss traces of cut fibers");
            for (fiber, pts) in &traces {
                let max = pts.iter().map(|p| p.1).fold(0.0f64, f64::max);
                println!("  {fiber}: {} hourly points, peak {max:.1} dB", pts.len());
            }
            emit("fig1a", json, &traces);
        }
        "fig1b" => {
            let cdfs = measurement::fig1b_lost_capacity_cdf();
            println!("Figure 1(b): CDF of lost IP capacity per cut (Tbps)");
            for (region, curve) in &cdfs {
                let median = curve.iter().find(|p| p.1 >= 0.5).map(|p| p.0).unwrap_or(0.0);
                let max = curve.last().map(|p| p.0).unwrap_or(0.0);
                println!("  {region}: median {median:.1} Tbps, max {max:.1} Tbps");
            }
            emit("fig1b", json, &cdfs);
        }
        "fig1c" => {
            let rows = measurement::fig1c_blast_radius();
            println!("Figure 1(c): blast radius of one fiber cut");
            println!("  topology   flows-affected  tunnels-affected");
            for r in &rows {
                println!(
                    "  {:<9}  {:>6.1} %        {:>6.1} %",
                    r.topology,
                    100.0 * r.flows_affected_frac,
                    100.0 * r.tunnels_affected_frac
                );
            }
            emit("fig1c", json, &rows);
        }
        "fig237" => {
            let rows = example3node::run();
            println!("Figures 2/3/7: the 3-node worked example");
            for r in &rows {
                println!("  {:<45} {:>6.2} units", r.setting, r.total_units);
            }
            emit("fig237", json, &rows);
        }
        "fig4a" | "fig4b" | "fig5a" | "fig5b" | "fig6" | "table1" | "table67" | "fig12" => {
            let (_net, model, ds) = measurement::year_dataset();
            match name {
                "fig4a" => {
                    let curve = measurement::fig4a_degradation_lengths(&ds);
                    let p50 = curve.iter().find(|p| p.1 >= 0.5).map(|p| p.0).unwrap_or(0.0);
                    println!("Figure 4(a): degradation length CDF; median ≈ {p50:.0} s");
                    emit("fig4a", json, &curve);
                }
                "fig4b" => {
                    let (fine, coarse) = measurement::fig4b_transition_trace();
                    let f = prete_optical::trace::detect(&fine);
                    let c = prete_optical::trace::detect(&coarse);
                    println!(
                        "Figure 4(b): 1 s sampling sees {} degradation(s) + cut at {:?} s; \
                         180 s sampling sees {} degradation(s)",
                        f.degradations.len(),
                        f.cut_at_idx,
                        c.degradations.len()
                    );
                    emit("fig4b", json, &(fine.samples.len(), coarse.samples.len()));
                }
                "fig5a" => {
                    let curve = measurement::fig5a_cut_delay_cdf(&ds);
                    let within_1000 = curve
                        .iter()
                        .filter(|p| p.0 <= 1000.0)
                        .map(|p| p.1)
                        .fold(0.0f64, f64::max);
                    println!(
                        "Figure 5(a): degradation→cut delay CDF; P(≤10³ s) ≈ {:.0} %",
                        100.0 * within_1000
                    );
                    emit("fig5a", json, &curve);
                }
                "fig5b" => {
                    let c = measurement::fig5b_event_counts(&ds);
                    println!(
                        "Figure 5(b): {} degradations, {} cuts, {} predictable \
                         (α = {:.1} %, P(cut|deg) = {:.1} %)",
                        c.degradations,
                        c.cuts,
                        c.predictable_cuts,
                        100.0 * c.alpha,
                        100.0 * c.cut_given_degradation
                    );
                    emit("fig5b", json, &c);
                }
                "fig6" | "table1" => {
                    let panels = measurement::fig6_table1_features(&ds);
                    println!("Figure 6 / Table 1: feature → failure proportion");
                    for p in &panels {
                        let lo = p.points.iter().map(|x| x.1).fold(1.0f64, f64::min);
                        let hi = p.points.iter().map(|x| x.1).fold(0.0f64, f64::max);
                        println!(
                            "  {:<12} proportion {lo:.2}–{hi:.2}   ln p = {:.1} ({})",
                            p.feature,
                            p.chi2_ln_p,
                            if p.chi2_ln_p < (0.01f64).ln() { "rejected" } else { "not rejected" }
                        );
                    }
                    emit("fig6_table1", json, &panels);
                }
                "table67" => {
                    let h = measurement::table67_hypothesis(&ds);
                    println!(
                        "Tables 6/7: epochs [both, cut-only, deg-only, neither] = {:?}",
                        h.observed
                    );
                    println!(
                        "  chi-square ln p = {:.1} → null {}; expected co-occurrence {:.2}",
                        h.ln_p,
                        if h.rejected { "REJECTED" } else { "kept" },
                        h.expected_cooccurrence
                    );
                    emit("table67", json, &h);
                }
                "fig12" => {
                    let f = measurement::fig12_rates(&model, &ds);
                    println!(
                        "Figure 12: fitted cuts/degradations slope {:.2} (model 1.6); \
                         p_d spans {:.2e}–{:.2e}",
                        f.fitted_slope,
                        f.p_degradation_cdf.first().map(|p| p.0).unwrap_or(0.0),
                        f.p_degradation_cdf.last().map(|p| p.0).unwrap_or(0.0)
                    );
                    emit("fig12", json, &f);
                }
                _ => unreachable!(),
            }
        }
        "fig11" => {
            let f = runtime::fig11();
            println!("Figure 11(a): pipeline stages (ms)");
            for s in &f.pipeline.stages {
                println!("  {:<15} start {:>8.1}  dur {:>8.1}", s.name, s.start_ms, s.duration_ms);
            }
            println!("  decision latency {:.0} ms (paper: < 300 ms)", f.pipeline.decision_ms());
            println!("Figure 11(b): update curve {:?}", f.update_curve);
            emit("fig11", json, &f);
        }
        "fig13" => {
            let data = availability::fig13(scope);
            println!("Figure 13: availability vs demand scale");
            for (topo, curves) in &data {
                println!("  [{topo}]");
                for c in curves {
                    println!("    {:<12} {}", c.scheme, curve_preview(&c.points));
                }
            }
            emit("fig13", json, &data);
        }
        "table4" => {
            let rows = availability::table4(scope);
            println!("Table 4: PreTE satisfied-demand gain");
            for r in &rows {
                println!("  availability {:.4}:", r.availability);
                for (scheme, gain) in &r.gain {
                    match gain {
                        Some(g) => println!("    vs {scheme:<10} {g:.2}x"),
                        None => println!("    vs {scheme:<10} NA"),
                    }
                }
            }
            emit("table4", json, &rows);
        }
        "table5" | "fig14" => {
            let r = prediction::table5_fig14(nn_epochs);
            println!("Table 5: prediction model comparison");
            println!("  model       P      R      F1     acc");
            for m in &r.table5 {
                println!(
                    "  {:<10} {:.2}   {:.2}   {:.2}   {:.2}",
                    m.name, m.precision, m.recall, m.f1, m.accuracy
                );
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            println!(
                "Figure 14: mean per-link error — NN {:.3}, TeaVar {:.3}",
                mean(&r.fig14_nn_errors),
                mean(&r.fig14_teavar_errors)
            );
            emit("table5_fig14", json, &r);
        }
        "table8" => {
            let rows = prediction::table8_ablation(nn_epochs);
            println!("Table 8: NN feature ablation");
            println!("  variant             P      R      F1     acc");
            for r in &rows {
                println!(
                    "  {:<18} {:.2}   {:.2}   {:.2}   {:.2}",
                    r.variant, r.precision, r.recall, r.f1, r.accuracy
                );
            }
            emit("table8", json, &rows);
        }
        "fig15" => {
            let curves = availability::fig15(scope);
            println!("Figure 15: prediction accuracy → availability");
            for c in &curves {
                println!("  {:<18} {}", c.scheme, curve_preview(&c.points));
            }
            emit("fig15", json, &curves);
        }
        "fig16" => {
            let a = availability::fig16a(scope);
            println!("Figure 16(a): availability vs new-tunnel ratio: {a:?}");
            let ratios: Vec<f64> = if scope == Scope::Full {
                vec![0.0, 0.5, 1.0, 2.0, 5.0]
            } else {
                vec![0.0, 1.0]
            };
            let b = runtime::fig16b(&ratios);
            println!("Figure 16(b): TE runtime vs ratio");
            for r in &b {
                println!(
                    "  {:<6} ratio {:<4} tunnels {:>3}  compute {:>6.2} s  establish {:>6.2} s",
                    r.topology, r.ratio, r.new_tunnels, r.te_compute_s, r.tunnel_establish_s
                );
            }
            emit("fig16", json, &(a, b));
        }
        "fig17" | "fig19" => {
            let net = topologies::b4();
            let model = FailureModel::new(&net, prete_bench::SEED);
            let truth = TrueConditionals::ground_truth(&net, &model, 200, prete_bench::SEED);
            let flows = topologies::flows_for(&net, availability::BASE_LOAD, prete_bench::SEED);
            let tunnels = TunnelSet::initialize(&net, &flows, 4);
            // Same scale pair in both scopes: the experiment is cheap
            // enough that quick runs keep full coverage.
            let scales: Vec<f64> = vec![1.0, 2.7];
            for scale in scales {
                let r = uncertainty_experiment(
                    &net, &model, &truth, &flows, &tunnels, scale, 0.05, prete_bench::SEED,
                );
                println!("Figure 17 @ scale {scale}:");
                for s in &r.availability {
                    println!("  {:<8} availability {:.5}", s.scheme, s.availability);
                }
                println!("Figure 19 @ scale {scale}:");
                for v in &r.variation {
                    println!(
                        "  {:<9} affected={:<5} mean Δ {:.1} Gbps",
                        v.source, v.affected, v.mean_variation_gbps
                    );
                }
                emit(&format!("fig17_19_scale{scale}"), json, &r);
            }
        }
        "fig18" => {
            let out = replay_production_case(ProductionScenario::default());
            println!("Figure 18: §7 production case");
            for s in [&out.traditional, &out.prete] {
                println!(
                    "  {:<12} backup {:?}  sustained loss {:>5.0} Gbps  \
                     loss duration {:>7.2} s  total lost {:>9.1} Gb",
                    s.system, s.backup_path, s.sustained_loss_gbps, s.loss_duration_s, s.total_lost_gb
                );
            }
            emit("fig18", json, &out);
        }
        "fig20" => {
            let a = granularity::fig20a(&[1, 10, 60, 180, 300]);
            println!("Figure 20(a): granularity → coverage/occurrence");
            for r in &a {
                println!(
                    "  {:>4} s: coverage {:.1} %, occurrence {:.1} %",
                    r.granularity_s,
                    100.0 * r.coverage,
                    100.0 * r.occurrence
                );
            }
            let b = availability::fig20b(scope);
            println!("Figure 20(b): availability vs α");
            for (alpha, pts) in &b {
                println!("  α = {alpha}: {}", curve_preview(pts));
            }
            emit("fig20", json, &(a, b));
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}

const ALL: &[&str] = &[
    "fig1a", "fig1b", "fig1c", "fig237", "fig4a", "fig4b", "fig5a", "fig5b", "fig6",
    "table1", "fig11", "fig12", "fig13", "table4", "table5", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "table67", "table8",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: figures <experiment|all> [--full] [--json DIR]");
        eprintln!("experiments: {}", ALL.join(" "));
        std::process::exit(2);
    };
    let scope = Scope::from_args(&args);
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    if name == "all" {
        // fig14/fig19/table1 are emitted together with their siblings.
        for n in ALL {
            if ["fig14", "fig19", "table1", "fig4b"].contains(n) {
                continue;
            }
            println!("==== {n} ====");
            run(n, scope, json);
            println!();
        }
    } else {
        run(name, scope, json);
    }
}
