//! `telemetry` — streaming-telemetry export for a deterministic
//! multi-tenant fleet run, plus the bench-regression diff gate.
//!
//! ```text
//! Usage: telemetry [--tenants N] [--epochs N] [--seed N] [--threads N]
//!                  [--flow-frac X] [--out-prom FILE] [--out-jsonl FILE]
//!                  [--check-determinism]
//!        telemetry bench-diff OLD NEW [--max-polish-regress-pct X]
//! ```
//!
//! The default mode runs a mixed B4/IBM fleet (every tenant under a
//! lenient SLO tracker) and exports its telemetry snapshot as
//! Prometheus text and JSON lines. With `--check-determinism` the run
//! repeats at a different solver thread count and the process exits
//! non-zero unless both exports are byte-identical — the CI smoke
//! invariant.
//!
//! `bench-diff` compares two `BENCH_solver.json` files and exits
//! non-zero when any `(backend, config)` row's polish time regressed
//! past the allowed percentage (default 15%).

use prete_bench::telemetry::{bench_diff, export, telemetry_fleet, TelemetryRunConfig};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-diff") {
        run_bench_diff(&args[1..]);
        return;
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let defaults = TelemetryRunConfig::default();
    let cfg = TelemetryRunConfig {
        tenants: flag("--tenants")
            .map(|v| v.parse().expect("--tenants takes an integer"))
            .unwrap_or(defaults.tenants),
        epochs: flag("--epochs")
            .map(|v| v.parse().expect("--epochs takes an integer"))
            .unwrap_or(defaults.epochs),
        seed: flag("--seed")
            .map(|v| v.parse().expect("--seed takes an integer"))
            .unwrap_or(defaults.seed),
        threads: flag("--threads")
            .map(|v| v.parse().expect("--threads takes an integer"))
            .unwrap_or(defaults.threads),
        flow_frac: flag("--flow-frac")
            .map(|v| v.parse().expect("--flow-frac takes a number"))
            .unwrap_or(defaults.flow_frac),
    };

    let report = telemetry_fleet(&cfg).expect("telemetry fleet runs");
    let exports = export(&report);
    let alerts: usize = report.telemetry.tenants.iter().map(|t| t.alerts.len()).sum();
    let anomalies: usize =
        report.telemetry.tenants.iter().map(|t| t.anomalies.len()).sum();
    println!(
        "Telemetry fleet: {} tenants × {} epochs (seed {}, {} rounds)",
        cfg.tenants, cfg.epochs, cfg.seed, report.rounds
    );
    for t in &report.telemetry.tenants {
        println!(
            "  tenant {}: series={} alerts={} anomalies={}",
            t.tenant,
            t.series.len(),
            t.alerts.len(),
            t.anomalies.len()
        );
    }
    println!(
        "  fleet: series={} alerts={} anomalies={} quarantined={}",
        report.telemetry.fleet.len(),
        alerts,
        anomalies,
        report.quarantined
    );

    if let Some(path) = flag("--out-prom") {
        write_out(&path, &exports.prom);
        println!("  [prometheus → {path}]");
    }
    if let Some(path) = flag("--out-jsonl") {
        write_out(&path, &exports.jsonl);
        println!("  [jsonl → {path}]");
    }

    if args.iter().any(|a| a == "--check-determinism") {
        // Re-run at a different thread count: every exported byte must
        // be a pure function of the run's inputs.
        let other = TelemetryRunConfig {
            threads: if cfg.threads == 1 { 2 } else { 1 },
            ..cfg
        };
        let again = export(&telemetry_fleet(&other).expect("repeat fleet runs"));
        if again != exports {
            eprintln!(
                "telemetry exports diverged across thread counts {} vs {}",
                cfg.threads, other.threads
            );
            std::process::exit(1);
        }
        println!(
            "  determinism: exports byte-identical across thread counts {} vs {}",
            cfg.threads, other.threads
        );
    }
}

fn run_bench_diff(args: &[String]) {
    let positional: Vec<&String> =
        args.iter().filter(|a| !a.starts_with("--")).take(2).collect();
    let [old_path, new_path] = positional[..] else {
        eprintln!("Usage: telemetry bench-diff OLD NEW [--max-polish-regress-pct X]");
        std::process::exit(2);
    };
    let max_pct: f64 = args
        .iter()
        .position(|a| a == "--max-polish-regress-pct")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--max-polish-regress-pct takes a number"))
        .unwrap_or(15.0);
    let old = std::fs::read_to_string(old_path)
        .unwrap_or_else(|e| panic!("read {old_path}: {e}"));
    let new = std::fs::read_to_string(new_path)
        .unwrap_or_else(|e| panic!("read {new_path}: {e}"));
    match bench_diff(&old, &new, max_pct) {
        Ok(diff) => {
            print!("{}", diff.render());
            let regs = diff.regressions();
            if !regs.is_empty() {
                eprintln!("{} row(s) regressed past {max_pct}%", regs.len());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("bench-diff failed: {e}");
            std::process::exit(2);
        }
    }
}

fn write_out(path: &str, contents: &str) {
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    f.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
}
