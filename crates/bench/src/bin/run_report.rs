//! `run_report` — instrumented controller replay on the WAN topology.
//!
//! ```text
//! Usage: run_report [--epochs N] [--out FILE] [--max-overhead-pct X]
//!                   [--overhead-epochs N] [--overhead-reps N]
//! ```
//!
//! Replays N degradation→cut traces through the full controller with a
//! deterministic recorder attached, prints the stage-attribution and
//! histogram tables, and writes the complete run report (span tree,
//! counters, histograms, event log) to `RUN_REPORT.json`. The JSON is
//! byte-identical across runs of the same build — diff two artifacts to
//! spot behavioural drift.
//!
//! With `--max-overhead-pct X` the binary re-times the same workload
//! with instrumentation on (live clock) and off (no-op recorder) and
//! exits non-zero when the relative overhead exceeds `X` percent —
//! CI's guarantee that the telemetry layer stays cheap. The overhead
//! pass uses its own (smaller) epoch count and best-of repetition
//! count so the gate stays inside the CI budget.

use prete_bench::obs::{overhead_wan, render_report, run_report_wan};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let epochs: usize = flag("--epochs")
        .map(|v| v.parse().expect("--epochs takes an integer"))
        .unwrap_or(6);
    let out = flag("--out").unwrap_or_else(|| "RUN_REPORT.json".into());

    let run = run_report_wan(epochs);
    print!("{}", render_report(&run));

    let json = serde_json::to_string_pretty(&run).expect("serialize");
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    println!("  [json → {out}]");

    if let Some(max) = flag("--max-overhead-pct") {
        let max: f64 = max.parse().expect("--max-overhead-pct takes a number");
        let oh_epochs: usize = flag("--overhead-epochs")
            .map(|v| v.parse().expect("--overhead-epochs takes an integer"))
            .unwrap_or_else(|| epochs.min(2));
        let reps: usize = flag("--overhead-reps")
            .map(|v| v.parse().expect("--overhead-reps takes an integer"))
            .unwrap_or(2);
        let o = overhead_wan(oh_epochs, reps);
        println!(
            "Instrumentation overhead: {:.1} ms on vs {:.1} ms off = {:+.2} % (gate {max} %)",
            o.instrumented_ms, o.baseline_ms, o.overhead_pct
        );
        if o.overhead_pct > max {
            eprintln!("instrumentation overhead {:.2} % above allowed {max} %", o.overhead_pct);
            std::process::exit(1);
        }
    }
}
