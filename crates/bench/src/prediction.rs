//! Prediction-model experiments: Table 5, Figure 14, Table 8.

use crate::measurement::year_dataset;
use prete_nn::encoder::FeatureMask;
use prete_nn::{evaluate, per_link_error, DecisionTree, EvalReport, Mlp, StatisticModel, TeaVarModel, TrainConfig};
use prete_optical::DegradationEvent;
use serde::Serialize;

/// Table 5 rows plus the Figure 14 error CDFs.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionResults {
    /// One row per model: name, P, R, F1, accuracy.
    pub table5: Vec<EvalReport>,
    /// Figure 14: per-link |error| samples for TeaVar and the NN.
    pub fig14_teavar_errors: Vec<f64>,
    /// Figure 14: NN per-link errors.
    pub fig14_nn_errors: Vec<f64>,
}

/// Trains all Table 5 models on the simulated year and evaluates on
/// the 80/20 per-fiber chronological split.
pub fn table5_fig14(epochs: usize) -> PredictionResults {
    let (_net, model, ds) = year_dataset();
    let (train, test) = ds.train_test_split(0.8);
    let p_static = model.profiles().iter().map(|p| p.p_cut).sum::<f64>()
        / model.profiles().len() as f64;

    let teavar = TeaVarModel::new(p_static);
    let statistic = StatisticModel::fit(&train);
    let tree = DecisionTree::fit(&train, 5, 8);
    let nn = Mlp::train(&train, TrainConfig { epochs, seed: crate::SEED, ..Default::default() });

    let table5 = vec![
        evaluate("TeaVar", &teavar, &test),
        evaluate("Statistic", &statistic, &test),
        evaluate("DT", &tree, &test),
        evaluate("NN (ours)", &nn, &test),
    ];
    PredictionResults {
        fig14_teavar_errors: per_link_error(&teavar, &test),
        fig14_nn_errors: per_link_error(&nn, &test),
        table5,
    }
}

/// One Table 8 ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant label (`NN w/o fiber ID` etc.).
    pub variant: String,
    /// Precision / recall / F1 / accuracy.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Accuracy.
    pub accuracy: f64,
}

/// Table 8: leave-one-feature-out ablation of the NN.
pub fn table8_ablation(epochs: usize) -> Vec<AblationRow> {
    let (_net, _model, ds) = year_dataset();
    let (train, test) = ds.train_test_split(0.8);
    let mut rows = Vec::new();
    let variants: Vec<(String, FeatureMask)> = ["time", "gradient", "degree", "fluctuation", "region", "fiber_id", "vendor"]
        .iter()
        .map(|f| (format!("NN w/o {f}"), FeatureMask::without(f)))
        .chain(std::iter::once(("NN-all".to_string(), FeatureMask::ALL)))
        .collect();
    for (label, mask) in variants {
        let nn = Mlp::train(
            &train,
            TrainConfig { epochs, mask, seed: crate::SEED, ..Default::default() },
        );
        let r = evaluate(&label, &nn, &test);
        rows.push(AblationRow {
            variant: label,
            precision: r.precision,
            recall: r.recall,
            f1: r.f1,
            accuracy: r.accuracy,
        });
    }
    rows
}

/// Convenience: a trained full NN plus the test split size (used by the
/// examples and integration tests).
pub fn train_reference_nn(epochs: usize) -> (Mlp, Vec<DegradationEvent>) {
    let (_net, _model, ds) = year_dataset();
    let (train, test) = ds.train_test_split(0.8);
    let nn = Mlp::train(&train, TrainConfig { epochs, seed: crate::SEED, ..Default::default() });
    (nn, test.into_iter().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_ordering_matches_table5() {
        // Table 5: NN > DT > Statistic > TeaVar (≈0) on F1.
        let r = table5_fig14(40);
        let f1: Vec<f64> = r.table5.iter().map(|m| m.f1).collect();
        assert!(f1[0] < 0.05, "TeaVar F1 {}", f1[0]);
        assert!(f1[3] > f1[2], "NN {} <= DT {}", f1[3], f1[2]);
        assert!(f1[3] > f1[1], "NN {} <= Statistic {}", f1[3], f1[1]);
        // NN lands in the paper's ballpark (0.81 P/R → F1 ≈ 0.8).
        assert!(f1[3] > 0.65, "NN F1 {}", f1[3]);
    }

    #[test]
    fn nn_per_link_error_smaller_than_teavar() {
        let r = table5_fig14(40);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&r.fig14_nn_errors) < mean(&r.fig14_teavar_errors),
            "NN {} vs TeaVar {}",
            mean(&r.fig14_nn_errors),
            mean(&r.fig14_teavar_errors)
        );
    }
}
