//! Experiment harness: one function per table/figure of the paper.
//!
//! Every module computes the data behind one (or a family of) paper
//! artifact(s) and returns serde-serializable rows; the `figures`
//! binary renders them as text tables + JSON. The experiment index
//! lives in `DESIGN.md`; measured-vs-paper numbers in `EXPERIMENTS.md`.
//!
//! Most experiments accept a [`Scope`]: `Quick` keeps wall-clock time
//! in seconds for CI/tests; `Full` reproduces the paper-scale sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod chaos;
pub mod example3node;
pub mod granularity;
pub mod measurement;
pub mod obs;
pub mod prediction;
pub mod runtime;
pub mod telemetry;

/// How much work an experiment should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Reduced sweeps (seconds): B4-sized topologies, fewer scales.
    Quick,
    /// Paper-scale sweeps (minutes): all topologies, dense scales.
    Full,
}

impl Scope {
    /// Parses `--full` style flags.
    pub fn from_args(args: &[String]) -> Scope {
        if args.iter().any(|a| a == "--full") {
            Scope::Full
        } else {
            Scope::Quick
        }
    }
}

/// Standard seed used across experiments for reproducibility.
pub const SEED: u64 = 42;
