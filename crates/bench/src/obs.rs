//! Observability experiments: the end-to-end run report and the
//! instrumentation-overhead benchmark behind the `run_report` binary.
//!
//! [`run_report_wan`] replays a batch of §5-style degradation traces
//! through the full controller on the WAN topology with a
//! *deterministic* recorder attached, yielding a [`RunReport`] whose
//! JSON is byte-identical across runs. [`overhead_wan`] times the same
//! workload with instrumentation on (live clock) versus off (no-op
//! recorder) — the CI gate that keeps the telemetry layer cheap.

use crate::SEED;
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::prelude::*;
use prete_core::schemes::PreTeScheme;
use prete_nn::Predictor;
use prete_optical::trace::{synthesize, ScriptedDegradation, TraceConfig};
use prete_optical::DegradationEvent;
use prete_sim::latency::LatencyModel;
use prete_sim::Controller;
use prete_topology::{topologies, FiberId, Network};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

/// Fixed-probability predictor: keeps the report workload independent
/// of NN training so runs are cheap and bit-reproducible.
struct ConstPredictor(f64);
impl Predictor for ConstPredictor {
    fn predict_proba(&self, _e: &DegradationEvent) -> f64 {
        self.0
    }
}

/// A replayed controller batch plus the full observability snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct ControllerRun {
    /// Topology name.
    pub topology: String,
    /// Number of traces replayed (one `"epoch"` root span each).
    pub epochs: usize,
    /// Epochs whose preparation finished before the scripted cut.
    pub prepared_before_cut: usize,
    /// Everything the recorder collected: span tree, counters, gauges,
    /// histograms and the structured event log.
    pub report: RunReport,
}

/// Replays `epochs` scripted degradation→cut traces through one
/// controller (shared warm-start cache, shared recorder) and returns
/// how many preparations beat the cut. The trace script is the §5
/// testbed shape — degraded at 65 s, cut at 110 s — alternating
/// between two fibers so the first visits are cache misses and the
/// revisits exercise the warm-start path (the controller's steady
/// state).
fn replay_epochs(net: &Network, flow_frac: f64, epochs: usize, obs: &Recorder) -> usize {
    let model = FailureModel::new(net, SEED);
    let flows = topologies::flows_for(net, flow_frac, SEED);
    let tunnels = TunnelSet::initialize(net, &flows, 2);
    let truth = TrueConditionals::ground_truth(net, &model, 40, 1);
    let scheme = PreTeScheme::new(0.99, ProbabilityEstimator::prete(&model, &truth));
    let predictor = ConstPredictor(0.8);
    let controller = Controller {
        net,
        model: &model,
        flows: &flows,
        base_tunnels: &tunnels,
        predictor: &predictor,
        scheme: &scheme,
        latency: LatencyModel::default(),
        threads: 0,
        backend: Default::default(),
        pricing: Default::default(),
        eta_update: Default::default(),
        cache: Default::default(),
        obs: obs.clone(),
    };
    let n_fibers = net.fibers().len();
    let mut prepared = 0;
    for epoch in 0..epochs {
        let deg = ScriptedDegradation {
            start_s: 65,
            duration_s: 45,
            degree_db: 6.0 + 0.1 * (epoch % 5) as f64,
            wobble_db: 0.2,
        };
        let fiber = if epoch % 2 == 0 { FiberId(0) } else { FiberId(n_fibers / 2) };
        let trace = synthesize(
            fiber,
            0,
            160,
            &[deg],
            Some(110),
            TraceConfig::default(),
            SEED + epoch as u64,
        );
        if controller.replay_trace(&trace).prepared_before_cut == Some(true) {
            prepared += 1;
        }
    }
    prepared
}

/// Builds the run report on an arbitrary topology — tests use B4 so the
/// debug-mode workload stays in seconds; the WAN run is release-only.
pub fn run_report_on(net: &Network, flow_frac: f64, epochs: usize) -> ControllerRun {
    let obs = Recorder::deterministic();
    let prepared = replay_epochs(net, flow_frac, epochs, &obs);
    ControllerRun {
        topology: net.name.clone(),
        epochs,
        prepared_before_cut: prepared,
        report: obs.report(),
    }
}

/// The acceptance-path run report: WAN topology, deterministic clock.
/// A small flow fraction keeps the TE program WAN-shaped without
/// blowing the CI budget.
pub fn run_report_wan(epochs: usize) -> ControllerRun {
    run_report_on(&topologies::twan(), 0.02, epochs)
}

/// Renders the run report as text tables: stage attribution under the
/// epoch span, histogram percentiles, counters, and event tallies.
pub fn render_report(run: &ControllerRun) -> String {
    let r = &run.report;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Run report: {} epochs on {} ({} prepared before cut, deterministic={})",
        run.epochs, run.topology, run.prepared_before_cut, r.deterministic
    );
    let _ = writeln!(s, "  spans: {}", r.span_names().join(" "));
    let _ = writeln!(s, "  {:<12} {:>6} {:>12} {:>8}", "stage", "calls", "total ms", "share %");
    for row in r.stage_attribution("epoch") {
        let _ = writeln!(
            s,
            "  {:<12} {:>6} {:>12.3} {:>8.1}",
            row.stage, row.calls, row.total_ms, row.share_pct
        );
    }
    let _ = writeln!(
        s,
        "  {:<24} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "histogram", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"
    );
    for (name, h) in &r.histograms {
        let _ = writeln!(
            s,
            "  {:<24} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name, h.count, h.p50, h.p95, h.p99, h.max
        );
    }
    for (name, v) in &r.counters {
        let _ = writeln!(s, "  {name} = {v}");
    }
    let mut kinds: std::collections::BTreeMap<&str, usize> = Default::default();
    for e in &r.events {
        *kinds.entry(e.kind.as_str()).or_default() += 1;
    }
    let _ = writeln!(
        s,
        "  events: {} ({} dropped)",
        kinds.iter().map(|(k, n)| format!("{k}×{n}")).collect::<Vec<_>>().join(" "),
        r.dropped_events
    );
    s
}

/// Instrumentation-on vs -off timing of the same replay workload.
#[derive(Debug, Clone, Serialize)]
pub struct Overhead {
    /// Topology name.
    pub topology: String,
    /// Epochs per timed repetition.
    pub epochs: usize,
    /// Repetitions per mode (best-of to strip scheduler noise).
    pub reps: usize,
    /// Best wall time with a live recorder attached (ms).
    pub instrumented_ms: f64,
    /// Best wall time with the no-op recorder (ms).
    pub baseline_ms: f64,
    /// `100 · (instrumented − baseline) / baseline`; negative values
    /// mean the difference is below measurement noise.
    pub overhead_pct: f64,
}

/// Times [`replay_epochs`] with instrumentation on (live clock, real
/// span/counter/event recording) and off (the no-op recorder every
/// disabled code path compiles down to). One untimed warm-up run, then
/// best-of-`reps` per mode, interleaved so frequency scaling hits both
/// modes alike.
pub fn overhead_on(net: &Network, flow_frac: f64, epochs: usize, reps: usize) -> Overhead {
    let time = |obs: &Recorder| {
        let t0 = Instant::now();
        let _ = replay_epochs(net, flow_frac, epochs, obs);
        t0.elapsed().as_secs_f64() * 1000.0
    };
    let _ = time(&Recorder::disabled());
    let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        off = off.min(time(&Recorder::disabled()));
        on = on.min(time(&Recorder::live()));
    }
    Overhead {
        topology: net.name.clone(),
        epochs,
        reps: reps.max(1),
        instrumented_ms: on,
        baseline_ms: off,
        overhead_pct: 100.0 * (on - off) / off.max(1e-9),
    }
}

/// [`overhead_on`] for the WAN topology — the CI bench-smoke gate.
pub fn overhead_wan(epochs: usize, reps: usize) -> Overhead {
    overhead_on(&topologies::twan(), 0.02, epochs, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_covers_pipeline_and_replays_identically() {
        let a = run_report_on(&topologies::b4(), 0.08, 2);
        let names = a.report.span_names();
        for stage in ["epoch", "detect", "predict", "tunnel", "solve"] {
            assert!(names.iter().any(|n| n == stage), "missing span {stage}: {names:?}");
        }
        assert_eq!(a.report.histograms["span.epoch"].count, 2);
        assert_eq!(a.report.counters["controller.epochs"], 2);
        assert!(a.report.counters["solver.lp_solves"] > 0);
        // Deterministic clock ⇒ byte-identical JSON across runs.
        let b = run_report_on(&topologies::b4(), 0.08, 2);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn overhead_times_both_modes() {
        let o = overhead_on(&topologies::b4(), 0.08, 2, 1);
        assert!(o.baseline_ms > 0.0);
        assert!(o.instrumented_ms > 0.0);
        assert!(o.overhead_pct.is_finite());
    }
}
