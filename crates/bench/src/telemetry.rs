//! Streaming-telemetry experiments behind the `telemetry` binary.
//!
//! [`telemetry_fleet`] drives the same mixed B4/IBM tenant fleet as
//! the fleet chaos soak — every tenant with an SLO tracker attached —
//! for a fixed number of epochs under the deterministic logical clock,
//! and returns the [`FleetReport`] whose embedded
//! [`TelemetrySnapshot`](prete_obs::TelemetrySnapshot) the binary
//! exports as Prometheus text and JSON lines. Because every quantity
//! the snapshot aggregates is a pure function of the run's inputs, the
//! exports are byte-identical across repeat runs and solver thread
//! counts — the binary's `--check-determinism` mode asserts exactly
//! that.
//!
//! [`bench_diff`] compares two `BENCH_solver.json` files row by row
//! (keyed on `(backend, config)`) and flags polish-time regressions
//! beyond a caller-set percentage — CI's solver-performance gate. The
//! comparison parses generic JSON rather than the typed bench record,
//! so a committed baseline written by an older schema (missing
//! newly-added counters) still diffs cleanly.

use crate::chaos::{mixed_tenant_leaves, tenant_specs};
use prete_obs::SloSpec;
use prete_sim::{CheckpointError, Fleet, FleetConfig, FleetReport};
use serde::Value;
use std::fmt::Write as _;

/// Shape of one telemetry fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryRunConfig {
    /// Tenants in the fleet (alternating B4/IBM topologies).
    pub tenants: usize,
    /// Epochs each tenant completes.
    pub epochs: u64,
    /// Master seed for per-tenant models, flows and seed streams.
    pub seed: u64,
    /// Solver threads (0 = auto). Never affects any exported byte.
    pub threads: usize,
    /// Fraction of node pairs carrying a flow.
    pub flow_frac: f64,
}

impl Default for TelemetryRunConfig {
    fn default() -> Self {
        Self { tenants: 4, epochs: 6, seed: crate::SEED, threads: 0, flow_frac: 0.05 }
    }
}

/// Runs one telemetry fleet: every tenant gets the default (fully
/// lenient) [`SloSpec`], so a clean run exports SLO status with zero
/// alerts — the telemetry-smoke invariant. Returns the fleet report
/// with its embedded telemetry snapshot.
pub fn telemetry_fleet(cfg: &TelemetryRunConfig) -> Result<FleetReport, CheckpointError> {
    let leaves = mixed_tenant_leaves(cfg.tenants, cfg.flow_frac, cfg.seed);
    let specs = tenant_specs(&leaves, 5)
        .into_iter()
        .map(|s| s.with_slo(SloSpec::default()))
        .collect();
    let fleet_cfg = FleetConfig { solver_threads: cfg.threads, ..FleetConfig::default() };
    let mut fleet = Fleet::new(specs, fleet_cfg)?;
    // A clean fleet finishes in exactly `epochs` rounds; the cap
    // guards against a quarantined tenant pinning the loop open.
    for _ in 0..cfg.epochs.saturating_mul(2).saturating_add(4) {
        let pending = (0..fleet.len()).any(|i| {
            fleet.quarantine_reason(i).is_none() && fleet.tenant_epoch(i) < cfg.epochs
        });
        if !pending {
            break;
        }
        fleet.run_round(Some(cfg.epochs))?;
    }
    Ok(fleet.report())
}

/// Both telemetry wire formats for one fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryExport {
    /// Prometheus text exposition.
    pub prom: String,
    /// JSON-lines stream.
    pub jsonl: String,
}

/// Renders a fleet report's telemetry into both wire formats,
/// including the fleet recorder's counters/gauges/histograms.
pub fn export(report: &FleetReport) -> TelemetryExport {
    TelemetryExport {
        prom: report.telemetry.to_prometheus(Some(&report.run)),
        jsonl: report.telemetry.to_jsonl(Some(&report.run)),
    }
}

/// One `(backend, config)` row of a bench comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiffRow {
    /// LP backend label from the bench record.
    pub backend: String,
    /// Row configuration label (e.g. `serial-cold`).
    pub config: String,
    /// Baseline polish time, ms.
    pub old_polish_ms: f64,
    /// Candidate polish time, ms.
    pub new_polish_ms: f64,
    /// Signed change in percent (positive = slower).
    pub delta_pct: f64,
    /// Whether the row regressed past the allowed percentage.
    pub regressed: bool,
}

/// Outcome of diffing two `BENCH_solver.json` files.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Rows present in both files, in candidate order.
    pub rows: Vec<BenchDiffRow>,
    /// Candidate rows with no baseline counterpart (new configurations
    /// are reported, never failed).
    pub unmatched: Vec<String>,
    /// The regression gate the diff ran under, in percent.
    pub max_polish_regress_pct: f64,
}

impl BenchDiff {
    /// Rows that regressed past the gate.
    pub fn regressions(&self) -> Vec<&BenchDiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Text table of the comparison.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Bench diff (gate: polish_ms regression > {:.1}% fails)",
            self.max_polish_regress_pct
        );
        let _ = writeln!(
            s,
            "  {:<14} {:<16} {:>12} {:>12} {:>9}",
            "backend", "config", "old polish", "new polish", "delta"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "  {:<14} {:<16} {:>12.2} {:>12.2} {:>+8.1}%{}",
                r.backend,
                r.config,
                r.old_polish_ms,
                r.new_polish_ms,
                r.delta_pct,
                if r.regressed { "  REGRESSED" } else { "" }
            );
        }
        for u in &self.unmatched {
            let _ = writeln!(s, "  {u}: no baseline row (skipped)");
        }
        s
    }
}

/// Numeric coercion across the JSON integer/float variants.
fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Extracts `(backend, config, polish_ms)` per row of one bench file.
fn bench_rows(json: &str, label: &str) -> Result<Vec<(String, String, f64)>, String> {
    let root = serde_json::parse(json).map_err(|e| format!("{label}: {e}"))?;
    let Some(Value::Seq(rows)) = root.get("rows") else {
        return Err(format!("{label}: no `rows` array"));
    };
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let backend = row
                .get("backend")
                .and_then(as_str)
                .ok_or_else(|| format!("{label}: row {i} missing `backend`"))?;
            let config = row
                .get("config")
                .and_then(as_str)
                .ok_or_else(|| format!("{label}: row {i} missing `config`"))?;
            let polish = row
                .get("stats")
                .and_then(|s| s.get("polish_ms"))
                .and_then(as_f64)
                .ok_or_else(|| format!("{label}: row {i} missing `stats.polish_ms`"))?;
            Ok((backend.to_string(), config.to_string(), polish))
        })
        .collect()
}

/// Diffs two `BENCH_solver.json` payloads. A candidate row regresses
/// when its polish time exceeds the baseline's by more than
/// `max_polish_regress_pct` percent; baselines too small to yield a
/// meaningful percentage (under a millisecond) never flag.
pub fn bench_diff(
    old_json: &str,
    new_json: &str,
    max_polish_regress_pct: f64,
) -> Result<BenchDiff, String> {
    let old = bench_rows(old_json, "baseline")?;
    let new = bench_rows(new_json, "candidate")?;
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (backend, config, new_polish) in new {
        let Some((_, _, old_polish)) = old
            .iter()
            .find(|(b, c, _)| *b == backend && *c == config)
        else {
            unmatched.push(format!("{backend}/{config}"));
            continue;
        };
        let old_polish = *old_polish;
        let delta_pct = if old_polish >= 1.0 {
            (new_polish - old_polish) / old_polish * 100.0
        } else {
            0.0
        };
        rows.push(BenchDiffRow {
            backend,
            config,
            old_polish_ms: old_polish,
            new_polish_ms: new_polish,
            delta_pct,
            regressed: delta_pct > max_polish_regress_pct,
        });
    }
    Ok(BenchDiff { rows, unmatched, max_polish_regress_pct })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(polish: f64) -> String {
        format!(
            r#"{{"topology":"B4","epochs":2,"rows":[
                {{"backend":"SparseRevised","config":"serial-cold",
                  "stats":{{"polish_ms":{polish},"pivots":100}}}},
                {{"backend":"SparseRevised","config":"parallel-8",
                  "stats":{{"polish_ms":0.2,"pivots":50}}}}]}}"#
        )
    }

    #[test]
    fn self_diff_is_clean_and_doubled_polish_regresses() {
        let base = bench_json(100.0);
        let clean = bench_diff(&base, &base, 15.0).unwrap();
        assert!(clean.regressions().is_empty(), "{:?}", clean.rows);
        assert_eq!(clean.rows.len(), 2);
        assert_eq!(clean.unmatched, Vec::<String>::new());

        let slow = bench_json(200.0);
        let diff = bench_diff(&base, &slow, 15.0).unwrap();
        let regs = diff.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].config, "serial-cold");
        assert!((regs[0].delta_pct - 100.0).abs() < 1e-9);
        assert!(diff.render().contains("REGRESSED"));
    }

    #[test]
    fn sub_millisecond_baselines_and_new_rows_never_flag() {
        let base = r#"{"rows":[{"backend":"b","config":"tiny","stats":{"polish_ms":0.001}}]}"#;
        let new = r#"{"rows":[
            {"backend":"b","config":"tiny","stats":{"polish_ms":0.5}},
            {"backend":"b","config":"fresh","stats":{"polish_ms":9.0}}]}"#;
        let diff = bench_diff(base, new, 15.0).unwrap();
        assert!(diff.regressions().is_empty(), "{:?}", diff.rows);
        assert_eq!(diff.unmatched, vec!["b/fresh".to_string()]);
    }

    #[test]
    fn malformed_bench_files_error_with_context() {
        assert!(bench_diff("not json", "{}", 15.0).unwrap_err().contains("baseline"));
        assert!(bench_diff(r#"{"rows":[]}"#, "{}", 15.0).unwrap_err().contains("candidate"));
        let bad_row = r#"{"rows":[{"config":"x","stats":{"polish_ms":1.0}}]}"#;
        assert!(bench_diff(bad_row, bad_row, 15.0).unwrap_err().contains("backend"));
    }

    #[test]
    fn committed_bench_baseline_self_compares_clean() {
        // The committed baseline predates some SolverStats counters;
        // the generic-JSON parser must still read it.
        let committed = include_str!("../../../BENCH_solver.json");
        let diff = bench_diff(committed, committed, 15.0).unwrap();
        assert!(!diff.rows.is_empty());
        assert!(diff.regressions().is_empty());
    }

    #[test]
    fn telemetry_fleet_exports_deterministically() {
        let cfg = TelemetryRunConfig { tenants: 2, epochs: 2, ..TelemetryRunConfig::default() };
        let report = telemetry_fleet(&cfg).unwrap();
        assert_eq!(report.telemetry.tenants.len(), 2);
        for t in &report.telemetry.tenants {
            assert!(t.slo.is_some(), "{} missing SLO status", t.tenant);
            assert!(t.alerts.is_empty(), "spurious alerts: {:?}", t.alerts);
            assert!(!t.series.is_empty());
        }
        let e1 = export(&report);
        assert!(e1.prom.contains("prete_ts_count"));
        assert!(e1.jsonl.lines().count() > 0);
        // Byte-identical across a repeat run at a different thread count.
        let e2 = export(&telemetry_fleet(&TelemetryRunConfig { threads: 2, ..cfg }).unwrap());
        assert_eq!(e1, e2);
    }
}
