//! The running 3-node example (Figures 2, 3 and 7).

use prete_core::algorithm1::{update_tunnels, TunnelUpdateConfig};
use prete_core::examples::{triangle, triangle_flows, TRIANGLE_PROBS};
use prete_core::prelude::*;
use prete_core::scenario::DegradationState;
use prete_core::schemes::{TeContext, TeScheme, TeaVarScheme};
use prete_topology::FiberId;
use serde::Serialize;

/// One row of the Figures 2/3/7 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ThreeNodeRow {
    /// Setting label.
    pub setting: String,
    /// Total admitted/delivered traffic (units).
    pub total_units: f64,
}

/// Reproduces the worked example:
///
/// * TeaVaR at β = 99 % with p = (0.005, 0.009, 0.001) admits 10 units
///   (Figure 2(b));
/// * an oracle knowing link s1s2 will not fail admits 20 (Figure 3(b));
/// * when s1s2 *does* fail, both deliver 10 (Figures 2(c)/3(c));
/// * with a degradation on s1s2, PreTE's Algorithm 1 builds tunnel
///   s1s3s2 and keeps 10 units deliverable after the cut (Figure 7).
pub fn run() -> Vec<ThreeNodeRow> {
    let net = triangle();
    let model = FailureModel::new(&net, crate::SEED);
    let flows = triangle_flows();
    let tunnels = TunnelSet::initialize(&net, &flows, 2);
    let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
    let mut rows = Vec::new();

    // TeaVaR (Figure 2(b)).
    let teavar = TeaVarScheme::new(&model, 0.99);
    let plan = teavar.plan(&ctx, &DegradationState::healthy(), Some(&TRIANGLE_PROBS));
    rows.push(ThreeNodeRow {
        setting: "TeaVaR (β=99%)".into(),
        total_units: plan.admitted.iter().sum(),
    });

    // Oracle: s1s2 certain to survive (Figure 3(b)).
    let plan = teavar.plan(&ctx, &DegradationState::healthy(), Some(&[0.0, 0.009, 0.001]));
    rows.push(ThreeNodeRow {
        setting: "Oracle, s1s2 survives".into(),
        total_units: plan.admitted.iter().sum(),
    });

    // Oracle: s1s2 certain to fail (Figure 3(c)).
    let plan = teavar.plan(&ctx, &DegradationState::healthy(), Some(&[1.0, 0.009, 0.001]));
    rows.push(ThreeNodeRow {
        setting: "Oracle, s1s2 fails".into(),
        total_units: plan.admitted.iter().sum(),
    });

    // PreTE under degradation of s1s2 (Figure 7): new tunnel s1s3s2,
    // deliverable traffic after the cut.
    // Start from thin tunnels so the reactive tunnel matters, as in the
    // figure (flow s1s2 has only the direct tunnel initially).
    let mut updated = TunnelSet::initialize(&net, &flows, 1);
    let created = update_tunnels(&net, &mut updated, FiberId(0), TunnelUpdateConfig::default());
    let scenarios = ScenarioSet::enumerate(&[1.0, 0.009, 0.001], 1, 0.0);
    let problem = TeProblem::new(&net, &flows, &updated, &scenarios);
    let sol = TeSolver::new(&problem)
        .beta(0.99)
        .method(SolveMethod::Heuristic)
        .solve()
        .expect("heuristic solve");
    let delivered: f64 = (0..flows.len()).map(|f| sol.delivered(&problem, f, 0)).sum();
    rows.push(ThreeNodeRow {
        setting: format!("PreTE after degradation ({} new tunnels), s1s2 cut", created.len()),
        total_units: delivered,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let rows = run();
        assert!((rows[0].total_units - 10.0).abs() < 1e-3, "TeaVaR: {}", rows[0].total_units);
        assert!((rows[1].total_units - 20.0).abs() < 1e-3, "oracle-up: {}", rows[1].total_units);
        assert!((rows[2].total_units - 10.0).abs() < 1e-3, "oracle-down: {}", rows[2].total_units);
        // Figure 7: PreTE still delivers 10 units after the cut thanks
        // to the reactive tunnel.
        assert!(rows[3].total_units >= 10.0 - 1e-3, "PreTE: {}", rows[3].total_units);
    }
}
