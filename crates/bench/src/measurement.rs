//! The §2/§3 measurement-study artifacts: Figures 1, 4, 5, 6, 12,
//! Tables 1, 6/7.

use crate::SEED;
use prete_core::prelude::*;
use prete_optical::trace::{synthesize, LossTrace, ScriptedDegradation, TraceConfig};
use prete_optical::{DatasetConfig, FailureModel};
use prete_stats::{
    binning::proportion_per_bin, chi2_independence, equal_width_bins, ChiSquareResult,
    ContingencyTable, EmpiricalCdf,
};
use prete_topology::{topologies, FiberId};
use serde::Serialize;

/// Figure 1(a): a week of per-second loss traces for fibers that get
/// cut. Returns (fiber label, downsampled trace points (hour, dB)).
pub fn fig1a_weekly_traces() -> Vec<(String, Vec<(f64, f64)>)> {
    let cfg = TraceConfig::default();
    let week = 7 * 24 * 3600;
    // Four fibers with one or two cut events during the week, each
    // preceded (or not) by degradations — the paper's "at most two
    // failures for a week".
    let scripts: [(&str, Vec<ScriptedDegradation>, Option<u64>); 4] = [
        (
            "fiber1",
            vec![ScriptedDegradation { start_s: 200_000, duration_s: 45, degree_db: 6.0, wobble_db: 0.2 }],
            Some(200_045),
        ),
        ("fiber2", vec![], Some(420_000)),
        (
            "fiber3",
            vec![ScriptedDegradation { start_s: 80_000, duration_s: 30, degree_db: 4.0, wobble_db: 0.05 }],
            Some(500_000),
        ),
        (
            "fiber4",
            vec![ScriptedDegradation { start_s: 350_000, duration_s: 8, degree_db: 7.5, wobble_db: 0.4 }],
            Some(350_010),
        ),
    ];
    scripts
        .into_iter()
        .enumerate()
        .map(|(i, (name, degs, cut))| {
            let t = synthesize(FiberId(i), 0, week as u64, &degs, cut, cfg, SEED + i as u64);
            // Subsample to hourly points for plotting.
            let pts: Vec<(f64, f64)> = t
                .samples
                .iter()
                .step_by(3600)
                .enumerate()
                .map(|(h, &v)| (h as f64, v))
                .collect();
            (name.to_string(), pts)
        })
        .collect()
}

/// Figure 1(b): CDF of IP capacity lost per fiber cut, per region.
/// Returns (region label, CDF curve of lost Tbps).
pub fn fig1b_lost_capacity_cdf() -> Vec<(String, Vec<(f64, f64)>)> {
    let net = topologies::twan();
    let mut by_region: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for fiber in net.fibers() {
        let lost_tbps = net.capacity_lost_by_cut(fiber.id) / 1000.0;
        by_region[fiber.region.min(2)].push(lost_tbps);
    }
    by_region
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(r, v)| (format!("region-{r}"), EmpiricalCdf::new(v).curve()))
        .collect()
}

/// One Figure 1(c) bar: average blast radius of a single cut.
#[derive(Debug, Clone, Serialize)]
pub struct BlastRadius {
    /// Topology name.
    pub topology: String,
    /// Mean fraction of flows affected by one fiber cut.
    pub flows_affected_frac: f64,
    /// Mean fraction of tunnels affected by one fiber cut.
    pub tunnels_affected_frac: f64,
}

/// Figure 1(c): affected flows/tunnels per single fiber cut on the
/// three topologies.
pub fn fig1c_blast_radius() -> Vec<BlastRadius> {
    [topologies::b4(), topologies::ibm(), topologies::twan()]
        .into_iter()
        .map(|net| {
            let flows = topologies::flows_for(&net, 0.15, SEED);
            let tunnels = TunnelSet::initialize(&net, &flows, 4);
            let mut f_acc = 0.0;
            let mut t_acc = 0.0;
            for fiber in net.fibers() {
                f_acc += tunnels.flows_affected_by(&net, fiber.id).len() as f64
                    / flows.len() as f64;
                t_acc += tunnels.tunnels_on_fiber(&net, fiber.id) as f64
                    / tunnels.len() as f64;
            }
            let n = net.num_fibers() as f64;
            BlastRadius {
                topology: net.name.clone(),
                flows_affected_frac: f_acc / n,
                tunnels_affected_frac: t_acc / n,
            }
        })
        .collect()
}

/// A generated year of events on B4, shared by the measurement figures.
pub fn year_dataset() -> (prete_topology::Network, FailureModel, Dataset) {
    let net = topologies::b4();
    let model = FailureModel::new(&net, SEED);
    let ds = Dataset::generate(&net, &model, DatasetConfig::one_year(SEED));
    (net, model, ds)
}

/// Figure 4(a): CDF of degradation durations (50 % under 10 s).
pub fn fig4a_degradation_lengths(ds: &Dataset) -> Vec<(f64, f64)> {
    let lens: Vec<f64> = ds.events.iter().map(|e| e.duration_s as f64).collect();
    EmpiricalCdf::new(lens).sampled_curve(60)
}

/// Figure 4(b): the healthy→degraded→cut trace, at 1 s and 180 s
/// granularity. Returns (fine trace, coarse trace).
pub fn fig4b_transition_trace() -> (LossTrace, LossTrace) {
    let deg = ScriptedDegradation { start_s: 65, duration_s: 45, degree_db: 6.0, wobble_db: 0.2 };
    let fine = synthesize(FiberId(0), 0, 400, &[deg], Some(110), TraceConfig::default(), SEED);
    let coarse = fine.downsample(180);
    (fine, coarse)
}

/// Figure 5(a): CDF of degradation→cut delays (log-ready seconds).
pub fn fig5a_cut_delay_cdf(ds: &Dataset) -> Vec<(f64, f64)> {
    EmpiricalCdf::new(ds.degradation_to_cut_delays()).curve()
}

/// Figure 5(b) rows: normalized event counts.
#[derive(Debug, Clone, Serialize)]
pub struct EventCounts {
    /// Total degradation events.
    pub degradations: usize,
    /// Total fiber cuts.
    pub cuts: usize,
    /// Cuts preceded by a degradation within 5 minutes.
    pub predictable_cuts: usize,
    /// Empirical `α` (paper: ≈ 25 %).
    pub alpha: f64,
    /// Empirical `P(cut | degradation)` (paper: ≈ 40 %).
    pub cut_given_degradation: f64,
}

/// Figure 5(b): event counts and the α / conditional statistics.
pub fn fig5b_event_counts(ds: &Dataset) -> EventCounts {
    EventCounts {
        degradations: ds.events.len(),
        cuts: ds.cuts.len(),
        predictable_cuts: ds.cuts.iter().filter(|c| c.predictable).count(),
        alpha: ds.alpha(),
        cut_given_degradation: ds.positive_fraction(),
    }
}

/// One Figure 6 panel: failure proportion per feature-value bin.
#[derive(Debug, Clone, Serialize)]
pub struct FeaturePanel {
    /// Feature name.
    pub feature: String,
    /// (bin center, failure proportion) points; empty bins skipped.
    pub points: Vec<(f64, f64)>,
    /// Chi-square result on the binned counts (Table 1 row).
    pub chi2_ln_p: f64,
}

/// Figure 6 + Table 1: the four critical features' failure-proportion
/// curves and their chi-square p-values (equal-width binning, 8 bins).
pub fn fig6_table1_features(ds: &Dataset) -> Vec<FeaturePanel> {
    let labels: Vec<bool> = ds.events.iter().map(|e| e.led_to_cut).collect();
    let features: [(&str, Vec<f64>); 4] = [
        ("time", ds.events.iter().map(|e| e.features.hour as f64).collect()),
        ("degree", ds.events.iter().map(|e| e.features.degree_db).collect()),
        ("gradient", ds.events.iter().map(|e| e.features.gradient_db).collect()),
        ("fluctuation", ds.events.iter().map(|e| e.features.fluctuation as f64).collect()),
    ];
    features
        .into_iter()
        .map(|(name, values)| {
            let binned = equal_width_bins(&values, 8);
            let props = proportion_per_bin(&binned, &labels);
            let points: Vec<(f64, f64)> = props
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|p| (binned.center(i), p)))
                .collect();
            // Chi-square on bins × {cut, no-cut} (drop empty bins).
            let mut used: Vec<usize> = (0..binned.bins)
                .filter(|&i| binned.counts[i] > 0)
                .collect();
            used.retain(|&i| binned.counts[i] > 0);
            let mut t = ContingencyTable::new(used.len().max(2), 2);
            for (row, &b) in used.iter().enumerate() {
                let n = binned.counts[b] as f64;
                let pos = props[b].unwrap_or(0.0) * n;
                t.set(row, 0, pos);
                t.set(row, 1, n - pos);
            }
            let r: ChiSquareResult = chi2_independence(&t);
            FeaturePanel { feature: name.into(), points, chi2_ln_p: r.ln_p_value }
        })
        .collect()
}

/// Tables 6/7: the Appendix A.1 contingency table and its chi-square
/// verdict, plus the independence counterfactual.
#[derive(Debug, Clone, Serialize)]
pub struct HypothesisTest {
    /// Observed epoch table `[both, cut-only, deg-only, neither]`.
    pub observed: [f64; 4],
    /// ln p-value of the chi-square test.
    pub ln_p: f64,
    /// Whether the null (independence) is rejected at 0.01.
    pub rejected: bool,
    /// Expected co-occurrence count under independence (the Table 7
    /// "what if they were unrelated" cell).
    pub expected_cooccurrence: f64,
}

/// Runs the §3.1 epoch-level hypothesis test.
pub fn table67_hypothesis(ds: &Dataset) -> HypothesisTest {
    let t = ds.contingency_table();
    let r = chi2_independence(&t);
    HypothesisTest {
        observed: [t.get(0, 0), t.get(0, 1), t.get(1, 0), t.get(1, 1)],
        ln_p: r.ln_p_value,
        rejected: r.rejects_null_at(0.01),
        expected_cooccurrence: t.expected(0, 0),
    }
}

/// Figure 12: (a) per-fiber degradation/cut counts (linear relation);
/// (b) CDF of per-fiber degradation probability.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    /// (degradations, cuts) per fiber.
    pub per_fiber_counts: Vec<(usize, usize)>,
    /// Fitted slope cuts/degradations (paper model: 1.6).
    pub fitted_slope: f64,
    /// CDF of `p_d` across fibers.
    pub p_degradation_cdf: Vec<(f64, f64)>,
}

/// Builds the Figure 12 data.
pub fn fig12_rates(model: &FailureModel, ds: &Dataset) -> Fig12 {
    let counts = ds.per_fiber_counts();
    let (sx, sxy): (f64, f64) = counts
        .iter()
        .fold((0.0, 0.0), |(sx, sxy), &(d, c)| {
            (sx + (d * d) as f64, sxy + (d * c) as f64)
        });
    let fitted_slope = if sx > 0.0 { sxy / sx } else { 0.0 };
    let pds: Vec<f64> = model.profiles().iter().map(|p| p.p_degradation).collect();
    Fig12 {
        per_fiber_counts: counts,
        fitted_slope,
        p_degradation_cdf: EmpiricalCdf::new(pds).curve(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1c_matches_paper_magnitudes() {
        let rows = fig1c_blast_radius();
        assert_eq!(rows.len(), 3);
        let b4 = rows.iter().find(|r| r.topology == "B4").unwrap();
        // Paper: "on B4 topology, 33 % of flows and 13 % of tunnels are
        // affected when a fiber cut event happens".
        assert!(
            (0.1..=0.5).contains(&b4.flows_affected_frac),
            "flows {}",
            b4.flows_affected_frac
        );
        assert!(
            (0.05..=0.3).contains(&b4.tunnels_affected_frac),
            "tunnels {}",
            b4.tunnels_affected_frac
        );
    }

    #[test]
    fn fig1b_reaches_multi_tbps() {
        let cdfs = fig1b_lost_capacity_cdf();
        assert!(!cdfs.is_empty());
        let max_loss = cdfs
            .iter()
            .flat_map(|(_, c)| c.iter().map(|&(x, _)| x))
            .fold(0.0f64, f64::max);
        assert!(max_loss >= 4.0, "max lost capacity {max_loss} Tbps");
    }

    #[test]
    fn fig4b_coarse_misses_the_degradation() {
        let (fine, coarse) = fig4b_transition_trace();
        let f = prete_optical::trace::detect(&fine);
        let c = prete_optical::trace::detect(&coarse);
        assert_eq!(f.degradations.len(), 1);
        // 180 s sampling has at most a point or two inside the 45 s
        // window; with the cut at 110 s the coarse detector sees the
        // cut but not a multi-sample degradation.
        assert!(c.degradations.len() <= 1);
        assert!(f.cut_at_idx.is_some());
    }
}
