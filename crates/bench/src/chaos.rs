//! Chaos-soak experiments behind the `chaos_soak` binary.
//!
//! [`soak_on`] assembles the same WAN-shaped controller testbed as the
//! run-report experiments — const-probability predictor, Benders with a
//! shared warm-start cache, default retry policy — wraps it in the
//! crash-safe [`DurableController`](prete_sim::DurableController)
//! machinery and drives it through a seeded [`ChaosPlan`]: random
//! crash/restart cycles, corrupted checkpoints and truncated journals,
//! with every epoch checked against the chaos invariants (availability
//! floor, finite allocations, span-tree well-formedness, bit-identity
//! with an uninterrupted golden run, monotone warm-cache counters).

use crate::SEED;
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::prelude::*;
use prete_core::schemes::PreTeScheme;
use prete_nn::Predictor;
use prete_optical::DegradationEvent;
use prete_sim::latency::LatencyModel;
use prete_sim::{
    chaos_soak, fleet_chaos_soak, ChaosPlan, CheckpointError, Controller, FleetChaosPlan,
    FleetConfig, FleetSoakReport, RetryPolicy, RobustController, ScriptedWorkload, SoakReport,
    TenantSpec,
};
use prete_topology::{topologies, Network};
use std::fmt::Write as _;

/// Fixed-probability predictor: keeps the soak workload independent of
/// NN training so runs are cheap and bit-reproducible.
struct ConstPredictor(f64);
impl Predictor for ConstPredictor {
    fn predict_proba(&self, _e: &DegradationEvent) -> f64 {
        self.0
    }
}

/// Runs one chaos soak on an arbitrary topology — tests use B4 so the
/// debug-mode workload stays in seconds; the WAN soak is release-only.
pub fn soak_on(net: &Network, flow_frac: f64, plan: &ChaosPlan) -> Result<SoakReport, CheckpointError> {
    let model = FailureModel::new(net, SEED);
    let flows = topologies::flows_for(net, flow_frac, SEED);
    let tunnels = TunnelSet::initialize(net, &flows, 2);
    let truth = TrueConditionals::ground_truth(net, &model, 40, 1);
    let scheme = PreTeScheme::new(0.99, ProbabilityEstimator::prete(&model, &truth));
    let predictor = ConstPredictor(0.8);
    let mk = || {
        RobustController::new(
            Controller {
                net,
                model: &model,
                flows: &flows,
                base_tunnels: &tunnels,
                predictor: &predictor,
                scheme: &scheme,
                latency: LatencyModel::default(),
                threads: 0,
                backend: Default::default(),
                pricing: Default::default(),
                eta_update: Default::default(),
                cache: Default::default(),
                obs: Default::default(),
            },
            // Heuristic keeps 50-epoch WAN soaks inside the CI budget;
            // it still drives the warm-start cache (its subproblem LPs
            // warm-hit across epochs), so the checkpointed cache
            // snapshot genuinely matters for the bit-identity
            // invariant. The Benders path is soaked on the triangle
            // testbed in `prete-sim::chaos`'s own tests.
            SolveMethod::Heuristic,
            RetryPolicy::default(),
            0.99,
        )
    };
    let workload = ScriptedWorkload::new(net.fibers().len());
    chaos_soak(&mk, &workload, plan)
}

/// The acceptance-path soak: WAN topology, small flow fraction — the
/// same scaling the run-report experiments use.
pub fn soak_wan(plan: &ChaosPlan) -> Result<SoakReport, CheckpointError> {
    soak_on(&topologies::twan(), 0.02, plan)
}

/// Everything one fleet tenant borrows: its own topology, failure
/// model, flows, tunnels, scheme and predictor. Built once, outlives
/// the soak (every [`TenantSpec`] borrows from it).
pub struct TenantLeaves {
    /// Tenant name, e.g. `b4-0`.
    pub name: String,
    /// Seed of the tenant's durable seed stream.
    pub run_seed: u64,
    net: Network,
    model: FailureModel,
    flows: Vec<Flow>,
    tunnels: TunnelSet,
    scheme: PreTeScheme,
    predictor: ConstPredictor,
}

/// Builds leaves for a `tenants`-wide fleet alternating the B4 and IBM
/// topologies — each tenant gets its own failure model, flow set and
/// seed stream, so no two tenants share any mutable state.
pub fn mixed_tenant_leaves(tenants: usize, flow_frac: f64, seed: u64) -> Vec<TenantLeaves> {
    (0..tenants)
        .map(|i| {
            let (kind, net) =
                if i % 2 == 0 { ("b4", topologies::b4()) } else { ("ibm", topologies::ibm()) };
            let tenant_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let model = FailureModel::new(&net, tenant_seed);
            let flows = topologies::flows_for(&net, flow_frac, tenant_seed);
            let tunnels = TunnelSet::initialize(&net, &flows, 2);
            let truth = TrueConditionals::ground_truth(&net, &model, 40, 1);
            let scheme = PreTeScheme::new(0.99, ProbabilityEstimator::prete(&model, &truth));
            TenantLeaves {
                name: format!("{kind}-{i}"),
                run_seed: tenant_seed ^ 0xf1ee,
                net,
                model,
                flows,
                tunnels,
                scheme,
                predictor: ConstPredictor(0.8),
            }
        })
        .collect()
}

/// Builds one fleet spec per leaf — heuristic method, warm cache,
/// default retry — borrowing topology, model and flows from `leaves`.
/// Shared by the fleet soak and the telemetry experiments.
pub fn tenant_specs(leaves: &[TenantLeaves], checkpoint_every: u64) -> Vec<TenantSpec<'_>> {
    leaves
        .iter()
        .map(|l| {
            let mut spec = TenantSpec::new(
                l.name.clone(),
                move || {
                    RobustController::new(
                        Controller {
                            net: &l.net,
                            model: &l.model,
                            flows: &l.flows,
                            base_tunnels: &l.tunnels,
                            predictor: &l.predictor,
                            scheme: &l.scheme,
                            latency: LatencyModel::default(),
                            threads: 0,
                            backend: Default::default(),
                            pricing: Default::default(),
                            eta_update: Default::default(),
                            cache: Default::default(),
                            obs: Default::default(),
                        },
                        SolveMethod::Heuristic,
                        RetryPolicy::default(),
                        0.99,
                    )
                },
                ScriptedWorkload::new(l.net.fibers().len()),
                l.run_seed,
            );
            spec.checkpoint_every = checkpoint_every;
            spec
        })
        .collect()
}

/// Runs one fleet chaos soak over pre-built tenant leaves. Same solver
/// shape as [`soak_on`] (heuristic method, warm cache, default retry),
/// one durable controller per tenant.
pub fn fleet_soak_over(
    leaves: &[TenantLeaves],
    checkpoint_every: u64,
    cfg: &FleetConfig,
    plan: &FleetChaosPlan,
) -> Result<FleetSoakReport, CheckpointError> {
    let mk_specs = || tenant_specs(leaves, checkpoint_every);
    fleet_chaos_soak(&mk_specs, cfg, plan)
}

/// Renders one fleet soak as a text summary.
pub fn render_fleet_soak(report: &FleetSoakReport) -> String {
    let mut s = String::new();
    let p = &report.plan;
    let _ = writeln!(
        s,
        "Fleet chaos soak: seed={} tenants={} epochs={} rounds={} crash_prob={} floor={}",
        p.seed, report.tenants, p.epochs, report.rounds, p.crash_prob, p.availability_floor
    );
    let _ = writeln!(
        s,
        "  recoveries={} quarantined={} events_injected={}",
        report.fleet.recoveries,
        report.fleet.quarantined,
        report.events_injected.len()
    );
    for t in &report.fleet.tenants {
        let _ = writeln!(
            s,
            "  tenant {}: epochs={} executions={} recoveries={} digest={:016x}{}",
            t.name,
            t.epochs,
            t.executions,
            t.recoveries,
            t.fingerprint_digest,
            t.quarantined
                .as_deref()
                .map(|r| format!(" QUARANTINED: {r}"))
                .unwrap_or_default()
        );
    }
    match (&report.violation, &report.shrunk) {
        (Some(v), shrunk) => {
            let _ = writeln!(
                s,
                "  VIOLATION [{}] tenant {} ({}) epoch {} under {:?}: {}",
                v.invariant, v.tenant, v.name, v.epoch, v.event, v.detail
            );
            if let Some(m) = shrunk {
                let _ = writeln!(
                    s,
                    "  minimal repro: seed={} tenant={} epoch={} event={:?} invariant={}",
                    m.seed, m.tenant, m.epoch, m.event, m.invariant
                );
            }
        }
        (None, _) => {
            let _ = writeln!(s, "  OK: all tenants isolated and bit-identical");
        }
    }
    s
}

/// Renders one soak as a text summary: the plan, the injected events,
/// and either a clean verdict or the violation plus its minimized
/// repro.
pub fn render_soak(report: &SoakReport) -> String {
    let mut s = String::new();
    let p = &report.plan;
    let _ = writeln!(
        s,
        "Chaos soak: seed={} epochs={}/{} crash_prob={} checkpoint_every={} floor={}",
        p.seed, report.epochs_completed, p.epochs, p.crash_prob, p.checkpoint_every,
        p.availability_floor
    );
    let _ = writeln!(
        s,
        "  executions={} recoveries={} events_injected={}",
        report.executions,
        report.recoveries,
        report.events_injected.len()
    );
    if !report.events_injected.is_empty() {
        let events: Vec<String> = report
            .events_injected
            .iter()
            .map(|(e, ev)| format!("{e}:{ev:?}"))
            .collect();
        let _ = writeln!(s, "  injected: {}", events.join(" "));
    }
    match (&report.violation, &report.shrunk) {
        (Some(v), shrunk) => {
            let _ = writeln!(
                s,
                "  VIOLATION [{}] at epoch {} under {:?}: {}",
                v.invariant, v.epoch, v.event, v.detail
            );
            if let Some(m) = shrunk {
                let _ = writeln!(
                    s,
                    "  minimal repro: seed={} epoch={} event={:?} invariant={}",
                    m.seed, m.epoch, m.event, m.invariant
                );
            }
        }
        (None, _) => {
            let _ = writeln!(s, "  OK: all invariants held");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_soak_is_clean_and_renders() {
        let plan = ChaosPlan { crash_prob: 0.6, ..ChaosPlan::new(SEED, 4) };
        let report = soak_on(&topologies::b4(), 0.08, &plan).expect("soak runs");
        assert!(report.violation.is_none(), "violation: {:?}", report.violation);
        assert_eq!(report.epochs_completed, 4);
        assert!(report.executions >= 4);
        let text = render_soak(&report);
        assert!(text.contains("OK: all invariants held"), "{text}");
    }

    #[test]
    fn mixed_fleet_soak_is_clean_and_renders() {
        let leaves = mixed_tenant_leaves(2, 0.05, SEED);
        assert_eq!(leaves[0].name, "b4-0");
        assert_eq!(leaves[1].name, "ibm-1");
        let plan = prete_sim::FleetChaosPlan {
            crash_prob: 0.5,
            ..prete_sim::FleetChaosPlan::new(SEED, 3)
        };
        let report =
            fleet_soak_over(&leaves, 3, &FleetConfig::default(), &plan).expect("fleet soak runs");
        assert!(report.violation.is_none(), "violation: {:?}", report.violation);
        for t in &report.fleet.tenants {
            assert_eq!(t.epochs, 3, "{} unfinished", t.name);
            assert_eq!(t.quarantined, None);
        }
        let text = render_fleet_soak(&report);
        assert!(text.contains("OK: all tenants isolated"), "{text}");
        assert!(text.contains("tenant b4-0"), "{text}");
    }
}
