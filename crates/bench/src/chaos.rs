//! Chaos-soak experiments behind the `chaos_soak` binary.
//!
//! [`soak_on`] assembles the same WAN-shaped controller testbed as the
//! run-report experiments — const-probability predictor, Benders with a
//! shared warm-start cache, default retry policy — wraps it in the
//! crash-safe [`DurableController`](prete_sim::DurableController)
//! machinery and drives it through a seeded [`ChaosPlan`]: random
//! crash/restart cycles, corrupted checkpoints and truncated journals,
//! with every epoch checked against the chaos invariants (availability
//! floor, finite allocations, span-tree well-formedness, bit-identity
//! with an uninterrupted golden run, monotone warm-cache counters).

use crate::SEED;
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::prelude::*;
use prete_core::schemes::PreTeScheme;
use prete_nn::Predictor;
use prete_optical::DegradationEvent;
use prete_sim::latency::LatencyModel;
use prete_sim::{
    chaos_soak, ChaosPlan, CheckpointError, Controller, RetryPolicy, RobustController,
    ScriptedWorkload, SoakReport,
};
use prete_topology::{topologies, Network};
use std::fmt::Write as _;

/// Fixed-probability predictor: keeps the soak workload independent of
/// NN training so runs are cheap and bit-reproducible.
struct ConstPredictor(f64);
impl Predictor for ConstPredictor {
    fn predict_proba(&self, _e: &DegradationEvent) -> f64 {
        self.0
    }
}

/// Runs one chaos soak on an arbitrary topology — tests use B4 so the
/// debug-mode workload stays in seconds; the WAN soak is release-only.
pub fn soak_on(net: &Network, flow_frac: f64, plan: &ChaosPlan) -> Result<SoakReport, CheckpointError> {
    let model = FailureModel::new(net, SEED);
    let flows = topologies::flows_for(net, flow_frac, SEED);
    let tunnels = TunnelSet::initialize(net, &flows, 2);
    let truth = TrueConditionals::ground_truth(net, &model, 40, 1);
    let scheme = PreTeScheme::new(0.99, ProbabilityEstimator::prete(&model, &truth));
    let predictor = ConstPredictor(0.8);
    let mk = || {
        RobustController::new(
            Controller {
                net,
                model: &model,
                flows: &flows,
                base_tunnels: &tunnels,
                predictor: &predictor,
                scheme: &scheme,
                latency: LatencyModel::default(),
                backend: Default::default(),
                cache: Default::default(),
                obs: Default::default(),
            },
            // Heuristic keeps 50-epoch WAN soaks inside the CI budget;
            // it still drives the warm-start cache (its subproblem LPs
            // warm-hit across epochs), so the checkpointed cache
            // snapshot genuinely matters for the bit-identity
            // invariant. The Benders path is soaked on the triangle
            // testbed in `prete-sim::chaos`'s own tests.
            SolveMethod::Heuristic,
            RetryPolicy::default(),
            0.99,
        )
    };
    let workload = ScriptedWorkload::new(net.fibers().len());
    chaos_soak(&mk, &workload, plan)
}

/// The acceptance-path soak: WAN topology, small flow fraction — the
/// same scaling the run-report experiments use.
pub fn soak_wan(plan: &ChaosPlan) -> Result<SoakReport, CheckpointError> {
    soak_on(&topologies::twan(), 0.02, plan)
}

/// Renders one soak as a text summary: the plan, the injected events,
/// and either a clean verdict or the violation plus its minimized
/// repro.
pub fn render_soak(report: &SoakReport) -> String {
    let mut s = String::new();
    let p = &report.plan;
    let _ = writeln!(
        s,
        "Chaos soak: seed={} epochs={}/{} crash_prob={} checkpoint_every={} floor={}",
        p.seed, report.epochs_completed, p.epochs, p.crash_prob, p.checkpoint_every,
        p.availability_floor
    );
    let _ = writeln!(
        s,
        "  executions={} recoveries={} events_injected={}",
        report.executions,
        report.recoveries,
        report.events_injected.len()
    );
    if !report.events_injected.is_empty() {
        let events: Vec<String> = report
            .events_injected
            .iter()
            .map(|(e, ev)| format!("{e}:{ev:?}"))
            .collect();
        let _ = writeln!(s, "  injected: {}", events.join(" "));
    }
    match (&report.violation, &report.shrunk) {
        (Some(v), shrunk) => {
            let _ = writeln!(
                s,
                "  VIOLATION [{}] at epoch {} under {:?}: {}",
                v.invariant, v.epoch, v.event, v.detail
            );
            if let Some(m) = shrunk {
                let _ = writeln!(
                    s,
                    "  minimal repro: seed={} epoch={} event={:?} invariant={}",
                    m.seed, m.epoch, m.event, m.invariant
                );
            }
        }
        (None, _) => {
            let _ = writeln!(s, "  OK: all invariants held");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_soak_is_clean_and_renders() {
        let plan = ChaosPlan { crash_prob: 0.6, ..ChaosPlan::new(SEED, 4) };
        let report = soak_on(&topologies::b4(), 0.08, &plan).expect("soak runs");
        assert!(report.violation.is_none(), "violation: {:?}", report.violation);
        assert_eq!(report.epochs_completed, 4);
        assert!(report.executions >= 4);
        let text = render_soak(&report);
        assert!(text.contains("OK: all invariants held"), "{text}");
    }
}
