//! Runtime experiments: Figure 11 (controller latency) and
//! Figure 16(b) (TE runtime vs new-tunnel ratio).

use crate::SEED;
use prete_core::algorithm1::{update_tunnels, TunnelUpdateConfig};
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::prelude::*;
use prete_core::scenario::DegradationState;
use prete_sim::latency::{LatencyModel, PipelineTiming};
use prete_topology::{topologies, FiberId};
use serde::Serialize;
use std::time::Instant;

/// Figure 11 output: the stage breakdown plus the update-time curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// Stage breakdown for a 2-tunnel degradation reaction.
    pub pipeline: PipelineTiming,
    /// Wall-clock TE computation measured on B4 (ms) — grounding the
    /// model's `te_compute_ms`.
    pub measured_te_ms: f64,
    /// (tunnel count, update seconds) — the Figure 11(b) line.
    pub update_curve: Vec<(usize, f64)>,
}

/// Builds the Figure 11 data, measuring the actual TE solve.
pub fn fig11() -> Fig11 {
    let net = topologies::b4();
    let model = FailureModel::new(&net, SEED);
    let truth = TrueConditionals::ground_truth(&net, &model, 100, SEED);
    let flows = topologies::flows_for(&net, 0.08, SEED);
    let tunnels = TunnelSet::initialize(&net, &flows, 4);
    let est = ProbabilityEstimator::prete(&model, &truth);
    let probs = est.probabilities(&DegradationState::single(FiberId(0)));
    let scenarios = ScenarioSet::enumerate(&probs, 1, 0.0);
    let problem = TeProblem::new(&net, &flows, &tunnels, &scenarios);
    let t0 = Instant::now();
    let _ = TeSolver::new(&problem)
        .beta(0.999)
        .method(SolveMethod::Heuristic)
        .solve()
        .expect("heuristic solve");
    let measured_te_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // The stage breakdown uses the calibrated production-controller
    // latencies (the paper's Gurobi-on-32-cores numbers); the measured
    // simplex time on this machine is reported alongside.
    let lat = LatencyModel::default();
    Fig11 {
        pipeline: lat.pipeline(2),
        measured_te_ms,
        update_curve: (0..=20).step_by(4).map(|n| (n, lat.update_time_s(n))).collect(),
    }
}

/// One Figure 16(b) row.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeRow {
    /// Topology.
    pub topology: String,
    /// New-tunnel ratio.
    pub ratio: f64,
    /// Number of tunnels Algorithm 1 established.
    pub new_tunnels: usize,
    /// Measured TE computation time (s).
    pub te_compute_s: f64,
    /// Modelled tunnel-establishment time (s).
    pub tunnel_establish_s: f64,
    /// Total runtime (s).
    pub total_s: f64,
}

/// Figure 16(b): TE runtime as the new-tunnel ratio grows (tunnel
/// establishment dominates, per the §6.4 discussion).
pub fn fig16b(ratios: &[f64]) -> Vec<RuntimeRow> {
    let lat = LatencyModel::default();
    let mut rows = Vec::new();
    for net in [topologies::b4(), topologies::ibm()] {
        let model = FailureModel::new(&net, SEED);
        let truth = TrueConditionals::ground_truth(&net, &model, 100, SEED);
        let flows = topologies::flows_for(&net, 0.08, SEED);
        let tunnels = TunnelSet::initialize(&net, &flows, 4);
        let est = ProbabilityEstimator::prete(&model, &truth);
        // Degrade the busiest fiber.
        let fiber = net
            .fibers()
            .iter()
            .max_by_key(|f| tunnels.tunnels_on_fiber(&net, f.id))
            .map(|f| f.id)
            .unwrap_or(FiberId(0));
        for &ratio in ratios {
            let t0 = Instant::now();
            let mut ts = tunnels.clone();
            let created = update_tunnels(
                &net,
                &mut ts,
                fiber,
                TunnelUpdateConfig { ratio, max_new_per_flow: 40 },
            );
            let probs = est.probabilities(&DegradationState::single(fiber));
            let scenarios = ScenarioSet::enumerate(&probs, 1, 0.0);
            let problem = TeProblem::new(&net, &flows, &ts, &scenarios);
            let _ = TeSolver::new(&problem)
                .beta(0.999)
                .method(SolveMethod::Heuristic)
                .solve()
                .expect("heuristic solve");
            let te_compute_s = t0.elapsed().as_secs_f64();
            let tunnel_establish_s = lat.update_time_s(created.len());
            rows.push(RuntimeRow {
                topology: net.name.clone(),
                ratio,
                new_tunnels: created.len(),
                te_compute_s,
                tunnel_establish_s,
                total_s: te_compute_s + tunnel_establish_s,
            });
        }
    }
    rows
}

/// One solver-benchmark configuration, measured over the whole epoch
/// workload.
#[derive(Debug, Clone, Serialize)]
pub struct SolverBenchRow {
    /// LP engine the row was measured with.
    pub backend: SolverBackend,
    /// Configuration label (`serial-cold`, `parallel-8`, ...).
    pub config: String,
    /// Worker threads the solver and precompute were configured with.
    pub threads: usize,
    /// Whether a persistent warm-start [`BasisCache`] was attached.
    pub warm: bool,
    /// Total wall time across all epochs (ms), including problem
    /// construction.
    pub total_ms: f64,
    /// `total_ms / epochs`.
    pub mean_epoch_ms: f64,
    /// Worst expected loss over the workload (identical across
    /// configurations when warm starting lands on the same vertex).
    pub max_loss: f64,
    /// Merged solver counters across all epochs.
    pub stats: SolverStats,
}

/// The solver benchmark: serial vs parallel vs warm-started timings on
/// the WAN topology, serialized to `BENCH_solver.json` by the
/// `bench_solver` binary.
#[derive(Debug, Clone, Serialize)]
pub struct SolverBench {
    /// Topology name.
    pub topology: String,
    /// Number of controller epochs simulated per configuration.
    pub epochs: usize,
    /// One row per (backend, configuration) pair.
    pub rows: Vec<SolverBenchRow>,
    /// `serial-cold` total over `warm-parallel-8` total: the end-to-end
    /// speedup of the parallel, warm-started solver (sparse rows when
    /// present, else the first benchmarked backend).
    pub parallel_speedup: f64,
    /// Dense `serial-cold` total over sparse `serial-cold` total — the
    /// revised-engine speedup. `None` unless both backends ran.
    pub sparse_speedup: Option<f64>,
}

/// Deterministic per-(epoch, flow) demand jitter in `[0.98, 1.02]` —
/// a splitmix-style hash so the workload is identical across
/// configurations and runs without an RNG dependency.
fn demand_jitter(epoch: usize, flow: usize) -> f64 {
    let mut h = (epoch as u64 + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(flow as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 31;
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + 0.02 * (2.0 * unit - 1.0)
}

/// Benchmarks the TE solver on the WAN topology over `epochs`
/// controller epochs with slightly jittered demands, in three
/// configurations: serial cold (`threads = 1`, no cache), parallel cold
/// (`threads = 8`), and parallel warm (`threads = 8` plus a persistent
/// [`BasisCache`] carried across epochs — the controller's steady
/// state).
pub fn bench_solver(epochs: usize) -> SolverBench {
    bench_solver_on(&topologies::twan(), epochs)
}

/// [`bench_solver`] on an arbitrary topology — the unit tests use B4 so
/// the debug-mode workload stays in seconds; the WAN run is
/// release-only. Measures the default (sparse) backend only; use
/// [`bench_solver_backends`] for the dense-vs-sparse comparison.
pub fn bench_solver_on(net: &prete_topology::Network, epochs: usize) -> SolverBench {
    bench_solver_backends(net, epochs, &[SolverBackend::SparseRevised])
}

/// [`bench_solver`] over an explicit backend list with the default
/// (Dantzig / product-form) sparse configuration; see
/// [`bench_solver_matrix`] for the full signature.
pub fn bench_solver_backends(
    net: &prete_topology::Network,
    epochs: usize,
    backends: &[SolverBackend],
) -> SolverBench {
    bench_solver_matrix(
        net,
        epochs,
        backends,
        Pricing::default(),
        EtaUpdate::default(),
        ColdStart::default(),
    )
}

/// The per-epoch workload every benchmark configuration replays:
/// jittered demands over a fixed tunnel set and single-cut scenario
/// enumeration.
struct Workload {
    base_flows: Vec<Flow>,
    tunnels: TunnelSet,
    scenarios: ScenarioSet,
}

fn workload(net: &prete_topology::Network) -> Workload {
    let model = FailureModel::new(net, SEED);
    let base_flows = topologies::flows_for(net, 0.08, SEED);
    let tunnels = TunnelSet::initialize(net, &base_flows, 4);
    let probs: Vec<f64> = net.fibers().iter().map(|f| model.p_cut(f.id)).collect();
    // Single-cut scenarios with the negligible tail dropped: keeps the
    // LP at WAN scale while the smoke benchmark stays in CI budget.
    let scenarios = ScenarioSet::enumerate(&probs, 1, 1e-4);
    Workload { base_flows, tunnels, scenarios }
}

#[allow(clippy::too_many_arguments)]
fn run_config(
    net: &prete_topology::Network,
    wl: &Workload,
    epochs: usize,
    backend: SolverBackend,
    config: &str,
    threads: usize,
    warm: bool,
    pricing: Pricing,
    eta_update: EtaUpdate,
    cold_start: ColdStart,
) -> SolverBenchRow {
    let mut cache = BasisCache::new();
    let mut stats = SolverStats::default();
    let mut max_loss = 0.0f64;
    let t0 = Instant::now();
    for epoch in 0..epochs {
        let mut flows = wl.base_flows.clone();
        for (i, f) in flows.iter_mut().enumerate() {
            f.demand_gbps *= demand_jitter(epoch, i);
        }
        let cfg = ProblemConfig { precompute_threads: threads, ..Default::default() };
        let problem = TeProblem::with_config(net, &flows, &wl.tunnels, &wl.scenarios, cfg);
        let mut solver = TeSolver::new(&problem)
            .beta(0.999)
            .method(SolveMethod::Heuristic)
            .threads(threads)
            .backend(backend)
            .pricing(pricing)
            .eta_update(eta_update)
            .cold_start(cold_start);
        if warm {
            solver = solver.warm_cache(&mut cache);
        }
        let (sol, s) = solver.solve_with_stats().expect("heuristic solve");
        stats.merge(&s);
        max_loss = max_loss.max(sol.max_loss);
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1000.0;
    SolverBenchRow {
        backend,
        config: config.into(),
        threads,
        warm,
        total_ms,
        mean_epoch_ms: total_ms / epochs.max(1) as f64,
        max_loss,
        stats,
    }
}

/// One sparse `serial-cold` row under an explicit pricing /
/// eta-update / cold-start combination — the building block of the
/// polish-speedup regression gate (the `--min-polish-speedup` flag of
/// `bench_solver`), which compares the legacy
/// Dantzig/product-form/two-phase configuration against
/// Forrest–Tomlin + devex + dual cold starts on the same workload in
/// the same process.
pub fn bench_serial_cold_row(
    net: &prete_topology::Network,
    epochs: usize,
    pricing: Pricing,
    eta_update: EtaUpdate,
    cold_start: ColdStart,
) -> SolverBenchRow {
    let wl = workload(net);
    run_config(
        net,
        &wl,
        epochs,
        SolverBackend::SparseRevised,
        "serial-cold",
        1,
        false,
        pricing,
        eta_update,
        cold_start,
    )
}

/// [`bench_solver`] over an explicit backend list and sparse-engine
/// configuration: each backend runs the full configuration grid, and
/// when both engines are present the dense-vs-sparse `serial-cold`
/// ratio lands in [`SolverBench::sparse_speedup`] (CI's
/// engine-regression gate). `pricing`/`eta_update` select the sparse
/// engine's rules (the dense tableau ignores them) and are recorded in
/// each row's [`SolverStats`]; `cold_start` picks the sparse engine's
/// cold-solve strategy for every row.
pub fn bench_solver_matrix(
    net: &prete_topology::Network,
    epochs: usize,
    backends: &[SolverBackend],
    pricing: Pricing,
    eta_update: EtaUpdate,
    cold_start: ColdStart,
) -> SolverBench {
    let wl = workload(net);
    let run = |backend: SolverBackend, config: &str, threads: usize, warm: bool| {
        run_config(
            net,
            &wl,
            epochs,
            backend,
            config,
            threads,
            warm,
            pricing,
            eta_update,
            cold_start,
        )
    };

    let mut rows = Vec::with_capacity(3 * backends.len());
    for &backend in backends {
        rows.push(run(backend, "serial-cold", 1, false));
        rows.push(run(backend, "parallel-8", 8, false));
        rows.push(run(backend, "warm-parallel-8", 8, true));
    }
    let find = |backend: SolverBackend, config: &str| {
        rows.iter().find(|r| r.backend == backend && r.config == config)
    };
    let speedup_backend = if backends.contains(&SolverBackend::SparseRevised) {
        SolverBackend::SparseRevised
    } else {
        backends[0]
    };
    let parallel_speedup = {
        let cold = find(speedup_backend, "serial-cold").expect("serial row");
        let warm = find(speedup_backend, "warm-parallel-8").expect("warm row");
        cold.total_ms / warm.total_ms.max(1e-9)
    };
    let sparse_speedup = match (
        find(SolverBackend::DenseTableau, "serial-cold"),
        find(SolverBackend::SparseRevised, "serial-cold"),
    ) {
        (Some(dense), Some(sparse)) => Some(dense.total_ms / sparse.total_ms.max(1e-9)),
        _ => None,
    };
    SolverBench { topology: net.name.clone(), epochs, rows, parallel_speedup, sparse_speedup }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_with_ratio() {
        let rows = fig16b(&[0.0, 1.0, 3.0]);
        let b4: Vec<&RuntimeRow> = rows.iter().filter(|r| r.topology == "B4").collect();
        assert_eq!(b4.len(), 3);
        assert_eq!(b4[0].new_tunnels, 0);
        assert!(b4[1].new_tunnels > 0);
        assert!(b4[2].new_tunnels >= b4[1].new_tunnels);
        assert!(b4[2].total_s >= b4[1].total_s);
        // Ratio 0 keeps runtime under a second (paper: "< 1 s if we do
        // not establish any tunnels").
        assert!(b4[0].total_s < 3.0, "{}", b4[0].total_s);
    }

    #[test]
    fn solver_bench_rows_are_consistent() {
        // B4 keeps the debug-mode test in seconds; the binary runs the
        // WAN-scale version in release mode.
        let b = bench_solver_on(&topologies::b4(), 3);
        assert_eq!(b.topology, "B4");
        assert_eq!(b.rows.len(), 3);
        let warm = &b.rows[2];
        assert!(warm.warm && warm.threads == 8);
        // Epochs 2.. restore the epoch-1 basis: at least one warm hit
        // per subsequent epoch.
        assert!(warm.stats.warm_hits >= 2, "warm hits: {}", warm.stats.warm_hits);
        // All configurations solve the same workload to the same
        // optimum (vertex may differ; the objective may not).
        for r in &b.rows[1..] {
            assert!(
                (r.max_loss - b.rows[0].max_loss).abs() < 1e-6,
                "{} max_loss {} vs serial {}",
                r.config,
                r.max_loss,
                b.rows[0].max_loss
            );
        }
        assert!(b.parallel_speedup > 0.0);
        // Single-backend run: no dense-vs-sparse ratio to report.
        assert!(b.sparse_speedup.is_none());
    }

    #[test]
    fn backend_comparison_rows_agree_on_the_optimum() {
        let b = bench_solver_backends(
            &topologies::b4(),
            2,
            &[SolverBackend::DenseTableau, SolverBackend::SparseRevised],
        );
        assert_eq!(b.rows.len(), 6);
        let dense = b.rows.iter().filter(|r| r.backend == SolverBackend::DenseTableau);
        let sparse: Vec<_> =
            b.rows.iter().filter(|r| r.backend == SolverBackend::SparseRevised).collect();
        assert_eq!(sparse.len(), 3);
        // Both engines land on the same objective in every configuration.
        for (d, s) in dense.zip(&sparse) {
            assert_eq!(d.config, s.config);
            assert!(
                (d.max_loss - s.max_loss).abs() < 1e-6,
                "{}: dense {} vs sparse {}",
                d.config,
                d.max_loss,
                s.max_loss
            );
        }
        // The sparse engine actually ran sparse (no silent fallback).
        assert!(sparse.iter().all(|r| r.stats.dense_fallbacks == 0));
        assert!(b.sparse_speedup.is_some());
    }

    #[test]
    fn fig11_breakdown_sane() {
        let f = fig11();
        assert!(f.measured_te_ms < 5_000.0, "TE solve took {} ms", f.measured_te_ms);
        assert_eq!(f.update_curve.first(), Some(&(0, 0.0)));
        let (_, t20) = *f.update_curve.last().unwrap();
        assert!((4.0..=6.0).contains(&t20));
    }
}
