//! Runtime experiments: Figure 11 (controller latency) and
//! Figure 16(b) (TE runtime vs new-tunnel ratio).

use crate::SEED;
use prete_core::algorithm1::{update_tunnels, TunnelUpdateConfig};
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::prelude::*;
use prete_core::scenario::DegradationState;
use prete_sim::latency::{LatencyModel, PipelineTiming};
use prete_topology::{topologies, FiberId};
use serde::Serialize;
use std::time::Instant;

/// Figure 11 output: the stage breakdown plus the update-time curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// Stage breakdown for a 2-tunnel degradation reaction.
    pub pipeline: PipelineTiming,
    /// Wall-clock TE computation measured on B4 (ms) — grounding the
    /// model's `te_compute_ms`.
    pub measured_te_ms: f64,
    /// (tunnel count, update seconds) — the Figure 11(b) line.
    pub update_curve: Vec<(usize, f64)>,
}

/// Builds the Figure 11 data, measuring the actual TE solve.
pub fn fig11() -> Fig11 {
    let net = topologies::b4();
    let model = FailureModel::new(&net, SEED);
    let truth = TrueConditionals::ground_truth(&net, &model, 100, SEED);
    let flows = topologies::flows_for(&net, 0.08, SEED);
    let tunnels = TunnelSet::initialize(&net, &flows, 4);
    let est = ProbabilityEstimator::prete(&model, &truth);
    let probs = est.probabilities(&DegradationState::single(FiberId(0)));
    let scenarios = ScenarioSet::enumerate(&probs, 1, 0.0);
    let problem = TeProblem::new(&net, &flows, &tunnels, &scenarios);
    let t0 = Instant::now();
    let _ = solve_te(&problem, 0.999, SolveMethod::Heuristic);
    let measured_te_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // The stage breakdown uses the calibrated production-controller
    // latencies (the paper's Gurobi-on-32-cores numbers); the measured
    // simplex time on this machine is reported alongside.
    let lat = LatencyModel::default();
    Fig11 {
        pipeline: lat.pipeline(2),
        measured_te_ms,
        update_curve: (0..=20).step_by(4).map(|n| (n, lat.update_time_s(n))).collect(),
    }
}

/// One Figure 16(b) row.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeRow {
    /// Topology.
    pub topology: String,
    /// New-tunnel ratio.
    pub ratio: f64,
    /// Number of tunnels Algorithm 1 established.
    pub new_tunnels: usize,
    /// Measured TE computation time (s).
    pub te_compute_s: f64,
    /// Modelled tunnel-establishment time (s).
    pub tunnel_establish_s: f64,
    /// Total runtime (s).
    pub total_s: f64,
}

/// Figure 16(b): TE runtime as the new-tunnel ratio grows (tunnel
/// establishment dominates, per the §6.4 discussion).
pub fn fig16b(ratios: &[f64]) -> Vec<RuntimeRow> {
    let lat = LatencyModel::default();
    let mut rows = Vec::new();
    for net in [topologies::b4(), topologies::ibm()] {
        let model = FailureModel::new(&net, SEED);
        let truth = TrueConditionals::ground_truth(&net, &model, 100, SEED);
        let flows = topologies::flows_for(&net, 0.08, SEED);
        let tunnels = TunnelSet::initialize(&net, &flows, 4);
        let est = ProbabilityEstimator::prete(&model, &truth);
        // Degrade the busiest fiber.
        let fiber = net
            .fibers()
            .iter()
            .max_by_key(|f| tunnels.tunnels_on_fiber(&net, f.id))
            .map(|f| f.id)
            .unwrap_or(FiberId(0));
        for &ratio in ratios {
            let t0 = Instant::now();
            let mut ts = tunnels.clone();
            let created = update_tunnels(
                &net,
                &mut ts,
                fiber,
                TunnelUpdateConfig { ratio, max_new_per_flow: 40 },
            );
            let probs = est.probabilities(&DegradationState::single(fiber));
            let scenarios = ScenarioSet::enumerate(&probs, 1, 0.0);
            let problem = TeProblem::new(&net, &flows, &ts, &scenarios);
            let _ = solve_te(&problem, 0.999, SolveMethod::Heuristic);
            let te_compute_s = t0.elapsed().as_secs_f64();
            let tunnel_establish_s = lat.update_time_s(created.len());
            rows.push(RuntimeRow {
                topology: net.name.clone(),
                ratio,
                new_tunnels: created.len(),
                te_compute_s,
                tunnel_establish_s,
                total_s: te_compute_s + tunnel_establish_s,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_with_ratio() {
        let rows = fig16b(&[0.0, 1.0, 3.0]);
        let b4: Vec<&RuntimeRow> = rows.iter().filter(|r| r.topology == "B4").collect();
        assert_eq!(b4.len(), 3);
        assert_eq!(b4[0].new_tunnels, 0);
        assert!(b4[1].new_tunnels > 0);
        assert!(b4[2].new_tunnels >= b4[1].new_tunnels);
        assert!(b4[2].total_s >= b4[1].total_s);
        // Ratio 0 keeps runtime under a second (paper: "< 1 s if we do
        // not establish any tunnels").
        assert!(b4[0].total_s < 3.0, "{}", b4[0].total_s);
    }

    #[test]
    fn fig11_breakdown_sane() {
        let f = fig11();
        assert!(f.measured_te_ms < 5_000.0, "TE solve took {} ms", f.measured_te_ms);
        assert_eq!(f.update_curve.first(), Some(&(0, 0.0)));
        let (_, t20) = *f.update_curve.last().unwrap();
        assert!((4.0..=6.0).contains(&t20));
    }
}
