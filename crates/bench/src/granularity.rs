//! Telemetry granularity study: Figure 20(a) / Appendix A.8.
//!
//! A legacy telemetry system sampling every `g` seconds only *sees* a
//! degradation if a sample instant lands inside the degraded window —
//! and only helps if that happens before the cut. With 50 % of
//! degradations shorter than 10 s (Figure 4(a)), minute-level sampling
//! misses almost all of them: the paper reports the coverage ratio
//! falling from 25 % at 1 s granularity to 2 % at 5 minutes.

use crate::measurement::year_dataset;
use serde::Serialize;

/// One Figure 20(a) row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GranularityRow {
    /// Sampling interval in seconds.
    pub granularity_s: u64,
    /// Coverage ratio: captured predictable cuts / all cuts.
    pub coverage: f64,
    /// Occurrence ratio: captured predictable cuts / all degradations
    /// (the Appendix A.8 definition).
    pub occurrence: f64,
    /// Fraction of degradations captured at all.
    pub degradations_captured: f64,
}

/// Whether a sampling grid with period `g` has a sample instant inside
/// `[start, start + duration)` at or before `deadline` (if any).
fn captured(start: u64, duration: u64, g: u64, deadline: Option<u64>) -> bool {
    // First multiple of g at or after start.
    let first = start.div_ceil(g) * g;
    if first >= start + duration {
        return false;
    }
    match deadline {
        Some(d) => first <= d,
        None => true,
    }
}

/// Computes the coverage/occurrence ratios across granularities.
pub fn fig20a(granularities: &[u64]) -> Vec<GranularityRow> {
    let (_net, _model, ds) = year_dataset();
    let total_cuts = ds.cuts.len().max(1);
    granularities
        .iter()
        .map(|&g| {
            let mut captured_degs = 0usize;
            let mut captured_predictable = 0usize;
            for e in &ds.events {
                let deadline = e.cut_delay_s.map(|d| e.start_s + d);
                if captured(e.start_s, e.duration_s.max(1), g, deadline.map(|d| d.max(e.start_s))) {
                    captured_degs += 1;
                    if e.led_to_cut {
                        captured_predictable += 1;
                    }
                }
            }
            GranularityRow {
                granularity_s: g,
                coverage: captured_predictable as f64 / total_cuts as f64,
                occurrence: captured_predictable as f64 / ds.events.len().max(1) as f64,
                degradations_captured: captured_degs as f64 / ds.events.len().max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_logic() {
        // Window [10, 20), grid 5 → sample at 10 ✓.
        assert!(captured(10, 10, 5, None));
        // Window [11, 14), grid 5 → samples at 10, 15 — none inside.
        assert!(!captured(11, 3, 5, None));
        // Deadline before the first in-window sample → missed.
        assert!(!captured(11, 10, 5, Some(14)));
        assert!(captured(11, 10, 5, Some(15)));
        // 1-second grid captures everything with duration ≥ 1.
        assert!(captured(123, 1, 1, None));
    }

    #[test]
    fn coverage_falls_with_coarser_sampling() {
        let rows = fig20a(&[1, 60, 300]);
        assert!(rows[0].coverage > rows[1].coverage);
        assert!(rows[1].coverage >= rows[2].coverage);
        // At 1 s the coverage is the full predictable fraction α ≈ 25 %.
        assert!(
            (0.15..=0.35).contains(&rows[0].coverage),
            "1s coverage {}",
            rows[0].coverage
        );
        // At 5 min it collapses towards the paper's 2 %.
        assert!(rows[2].coverage < 0.10, "300s coverage {}", rows[2].coverage);
    }

    #[test]
    fn fine_grid_captures_all_degradations() {
        let rows = fig20a(&[1]);
        assert!((rows[0].degradations_captured - 1.0).abs() < 1e-9);
    }
}
