//! Availability sweeps: Figure 13, Table 4, Figure 15, Figure 16(a),
//! Figure 20(b).

use crate::{Scope, SEED};
use prete_core::algorithm1::TunnelUpdateConfig;
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::eval::{AvailabilityEvaluator, EvalConfig};
use prete_core::gain::max_supported_scale;
use prete_core::prelude::*;
use prete_core::schemes::{
    ArrowScheme, EcmpScheme, FfcScheme, FlexileScheme, PreTeScheme, TeScheme, TeaVarScheme,
};
use prete_optical::FailureModel;
use prete_topology::topologies;
use serde::Serialize;

/// Baseline network load at demand scale 1 (fraction of total IP
/// capacity). Calibrated so the Figure 13 availability region of
/// interest (≥ 99 %) spans demand scales ≈ 1–8.
pub const BASE_LOAD: f64 = 0.05;

/// Planning availability target used by the probabilistic schemes.
pub const PLAN_BETA: f64 = 0.999;

/// One evaluation environment (topology + model + traffic + truth).
pub struct Env {
    /// Network.
    pub net: Network,
    /// Failure model.
    pub model: FailureModel,
    /// Ground-truth conditionals.
    pub truth: TrueConditionals,
    /// Scale-1 flows.
    pub flows: Vec<Flow>,
    /// Pre-established tunnels.
    pub tunnels: TunnelSet,
}

impl Env {
    /// Builds the environment for a topology.
    pub fn new(net: Network) -> Env {
        let model = FailureModel::new(&net, SEED);
        let truth = TrueConditionals::ground_truth(&net, &model, 200, SEED);
        let flows = topologies::flows_for(&net, BASE_LOAD, SEED);
        let tunnels = TunnelSet::initialize(&net, &flows, 4);
        Env { net, model, truth, flows, tunnels }
    }

    /// Availability of `scheme` at a demand scale.
    pub fn availability(&self, scheme: &dyn TeScheme, scale: f64, cfg: EvalConfig) -> f64 {
        let flows: Vec<Flow> = self
            .flows
            .iter()
            .map(|f| Flow { demand_gbps: f.demand_gbps * scale, ..*f })
            .collect();
        let ev = AvailabilityEvaluator::new(&self.net, &self.model, flows, &self.tunnels, &self.truth, cfg);
        ev.evaluate(scheme).mean
    }
}

/// The §6.1 benchmark scheme set.
pub fn benchmark_schemes(env: &Env) -> Vec<Box<dyn TeScheme + '_>> {
    vec![
        Box::new(EcmpScheme),
        Box::new(FfcScheme::one()),
        Box::new(FfcScheme::two()),
        Box::new(TeaVarScheme::new(&env.model, PLAN_BETA)),
        Box::new(ArrowScheme::new(&env.model, PLAN_BETA)),
        Box::new(FlexileScheme::new(&env.model, PLAN_BETA)),
        Box::new(PreTeScheme::new(
            PLAN_BETA,
            ProbabilityEstimator::prete(&env.model, &env.truth),
        )),
    ]
}

/// One scheme's availability-vs-scale curve.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeCurve {
    /// Scheme label.
    pub scheme: String,
    /// (demand scale, mean availability) points.
    pub points: Vec<(f64, f64)>,
}

fn eval_cfg(scope: Scope) -> EvalConfig {
    EvalConfig {
        top_k_degraded: if scope == Scope::Full { 10 } else { 5 },
        ..Default::default()
    }
}

/// Figure 13: availability vs demand scale for every scheme, per
/// topology.
pub fn fig13(scope: Scope) -> Vec<(String, Vec<SchemeCurve>)> {
    let nets: Vec<Network> = match scope {
        Scope::Quick => vec![topologies::b4()],
        Scope::Full => vec![topologies::b4(), topologies::ibm(), topologies::twan()],
    };
    let scales: Vec<f64> = match scope {
        Scope::Quick => vec![1.0, 2.0, 3.0, 4.5, 6.0],
        Scope::Full => vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0],
    };
    let cfg = eval_cfg(scope);
    nets.into_iter()
        .map(|net| {
            let env = Env::new(net);
            let curves = benchmark_schemes(&env)
                .iter()
                .map(|scheme| SchemeCurve {
                    scheme: scheme.name(),
                    points: scales
                        .iter()
                        .map(|&s| (s, env.availability(scheme.as_ref(), s, cfg)))
                        .collect(),
                })
                .collect();
            (env.net.name.clone(), curves)
        })
        .collect()
}

/// One Table 4 row: PreTE's satisfied-demand gain at one availability
/// level.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Availability target.
    pub availability: f64,
    /// Max scale per scheme (`None` = target unreachable even at the
    /// bracket's low end — the paper's "NA").
    pub max_scale: Vec<(String, Option<f64>)>,
    /// PreTE's gain over each scheme (`None` = NA).
    pub gain: Vec<(String, Option<f64>)>,
}

/// Table 4: satisfied-demand gains at 99 / 99.5 / 99.9 / 99.95 %.
pub fn table4(scope: Scope) -> Vec<Table4Row> {
    let net = if scope == Scope::Full { topologies::ibm() } else { topologies::b4() };
    let env = Env::new(net);
    let cfg = eval_cfg(scope);
    let iters = if scope == Scope::Full { 6 } else { 4 };
    let levels = match scope {
        Scope::Quick => vec![0.99, 0.999],
        Scope::Full => vec![0.9995, 0.999, 0.995, 0.99],
    };
    let schemes = benchmark_schemes(&env);
    levels
        .into_iter()
        .map(|level| {
            let max_scale: Vec<(String, Option<f64>)> = schemes
                .iter()
                .map(|s| {
                    let m = max_supported_scale(
                        |scale| env.availability(s.as_ref(), scale, cfg),
                        level,
                        0.25,
                        8.0,
                        iters,
                    );
                    (s.name(), m)
                })
                .collect();
            let prete = max_scale
                .iter()
                .find(|(n, _)| n == "PreTE")
                .and_then(|(_, m)| *m);
            let gain = max_scale
                .iter()
                .filter(|(n, _)| n != "PreTE")
                .map(|(n, m)| {
                    (n.clone(), match (prete, m) {
                        (Some(p), Some(m)) if *m > 0.0 => Some(p / m),
                        _ => None,
                    })
                })
                .collect();
            Table4Row { availability: level, max_scale, gain }
        })
        .collect()
}

/// Figure 15: availability at high levels for PreTE under different
/// prediction approaches (TeaVar-static, Statistic, NN-grade truth,
/// Oracle).
pub fn fig15(scope: Scope) -> Vec<SchemeCurve> {
    let env = Env::new(if scope == Scope::Full { topologies::ibm() } else { topologies::b4() });
    let scales: Vec<f64> = match scope {
        Scope::Quick => vec![1.0, 2.0, 3.0, 4.0],
        Scope::Full => vec![1.0, 1.7, 2.3, 3.0, 3.3, 3.7, 4.5],
    };
    let cfg = eval_cfg(scope);
    let statistic_truth = TrueConditionals {
        per_fiber: vec![
            prete_optical::MEAN_CUT_GIVEN_DEGRADATION;
            env.net.num_fibers()
        ],
    };
    let mut curves = Vec::new();
    // TeaVar prediction (no degradation signal).
    let teavar_pred = PreTeScheme {
        label: "TeaVar-prediction".into(),
        ..PreTeScheme::new(PLAN_BETA, ProbabilityEstimator::static_model(&env.model))
    };
    // Statistic prediction (flat 40 %).
    let statistic_pred = PreTeScheme {
        label: "Statistic".into(),
        ..PreTeScheme::new(PLAN_BETA, ProbabilityEstimator::prete(&env.model, &statistic_truth))
    };
    // NN-grade prediction: the ground-truth conditionals stand in for a
    // well-trained model (Table 5 shows the NN tracks them closely).
    let nn_pred = PreTeScheme {
        label: "PreTE (NN)".into(),
        ..PreTeScheme::new(PLAN_BETA, ProbabilityEstimator::prete(&env.model, &env.truth))
    };
    for scheme in [&teavar_pred, &statistic_pred, &nn_pred] {
        curves.push(SchemeCurve {
            scheme: scheme.name(),
            points: scales.iter().map(|&s| (s, env.availability(scheme, s, cfg))).collect(),
        });
    }
    // Oracle: exact outcome knowledge via the evaluator's branch split.
    let oracle_cfg = EvalConfig { oracle_outcome_split: true, ..cfg };
    curves.push(SchemeCurve {
        scheme: "Oracle".into(),
        points: scales
            .iter()
            .map(|&s| (s, env.availability(&nn_pred, s, oracle_cfg)))
            .collect(),
    });
    curves
}

/// Figure 16(a): availability vs the new-tunnel ratio (0 = PreTE-naive).
pub fn fig16a(scope: Scope) -> Vec<(f64, f64)> {
    let env = Env::new(topologies::b4());
    let cfg = eval_cfg(scope);
    let scale = 3.0;
    let ratios: Vec<f64> = match scope {
        Scope::Quick => vec![0.0, 1.0, 2.0],
        Scope::Full => vec![0.0, 0.5, 1.0, 2.0, 3.0, 5.0],
    };
    ratios
        .into_iter()
        .map(|ratio| {
            let scheme = PreTeScheme {
                tunnel_update: TunnelUpdateConfig { ratio, max_new_per_flow: 24 },
                label: if ratio == 0.0 { "PreTE-naive".into() } else { format!("PreTE r={ratio}") },
                ..PreTeScheme::new(PLAN_BETA, ProbabilityEstimator::prete(&env.model, &env.truth))
            };
            (ratio, env.availability(&scheme, scale, cfg))
        })
        .collect()
}

/// Figure 20(b): availability vs demand scale for different predictable
/// fractions `α` (a *world* property: more predictable cuts → lower
/// off-signal probability and more degradation lead time).
pub fn fig20b(scope: Scope) -> Vec<(f64, Vec<(f64, f64)>)> {
    let net = topologies::b4();
    let scales: Vec<f64> = match scope {
        Scope::Quick => vec![1.0, 3.0, 5.0],
        Scope::Full => vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    };
    let alphas = match scope {
        Scope::Quick => vec![0.0, 0.25, 1.0],
        Scope::Full => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let cfg = eval_cfg(scope);
    alphas
        .into_iter()
        .map(|alpha| {
            let model = FailureModel::new(&net, SEED).rescaled_for_alpha(alpha);
            let truth = TrueConditionals::ground_truth(&net, &model, 200, SEED);
            let flows = topologies::flows_for(&net, BASE_LOAD, SEED);
            let tunnels = TunnelSet::initialize(&net, &flows, 4);
            let scheme = PreTeScheme::new(
                PLAN_BETA,
                ProbabilityEstimator::dynamic(&model, &truth, alpha),
            );
            let cfg = EvalConfig { alpha, ..cfg };
            let points = scales
                .iter()
                .map(|&s| {
                    let scaled: Vec<Flow> = flows
                        .iter()
                        .map(|f| Flow { demand_gbps: f.demand_gbps * s, ..*f })
                        .collect();
                    let ev = AvailabilityEvaluator::new(&net, &model, scaled, &tunnels, &truth, cfg);
                    (s, ev.evaluate(&scheme).mean)
                })
                .collect();
            (alpha, points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prete_beats_teavar_on_b4_quick() {
        // The headline Figure 13 ordering at a mid demand scale —
        // inside the functioning regime (availability well above the
        // collapse floor). Past the collapse point (~3× for this flow
        // population) every scheme sheds most traffic and the ordering
        // is about collapse dynamics, not the paper's claim.
        let env = Env::new(topologies::b4());
        let cfg = eval_cfg(Scope::Quick);
        let teavar = TeaVarScheme::new(&env.model, PLAN_BETA);
        let prete =
            PreTeScheme::new(PLAN_BETA, ProbabilityEstimator::prete(&env.model, &env.truth));
        let scale = 2.0;
        let a_tv = env.availability(&teavar, scale, cfg);
        let a_pt = env.availability(&prete, scale, cfg);
        assert!(
            a_pt >= a_tv,
            "PreTE {a_pt} < TeaVaR {a_tv} at scale {scale}"
        );
    }

    #[test]
    fn availability_decreases_with_scale() {
        let env = Env::new(topologies::b4());
        let cfg = eval_cfg(Scope::Quick);
        let prete =
            PreTeScheme::new(PLAN_BETA, ProbabilityEstimator::prete(&env.model, &env.truth));
        let a1 = env.availability(&prete, 1.0, cfg);
        let a6 = env.availability(&prete, 8.0, cfg);
        assert!(a1 >= a6, "a(1) = {a1} < a(8) = {a6}");
        assert!(a1 > 0.999, "a(1) = {a1}");
    }
}
