//! Criterion benches for the prediction pipeline: trace detection,
//! feature extraction, NN inference (the Figure 11 "inference" stage),
//! and scenario regeneration (the "scenario-regen" stage).

use criterion::{criterion_group, criterion_main, Criterion};
use prete_core::prelude::*;
use prete_nn::{Mlp, Predictor, TrainConfig};
use prete_optical::trace::{detect, synthesize, ScriptedDegradation, TraceConfig};
use prete_optical::{DatasetConfig, FailureModel};
use prete_topology::{topologies, FiberId};
use std::hint::black_box;

fn bench_detection(c: &mut Criterion) {
    let deg = ScriptedDegradation { start_s: 65, duration_s: 45, degree_db: 6.0, wobble_db: 0.2 };
    let trace = synthesize(FiberId(0), 0, 900, &[deg], Some(110), TraceConfig::default(), 1);
    c.bench_function("pipeline/detect_900s_trace", |b| {
        b.iter(|| black_box(detect(&trace)))
    });
}

fn bench_inference(c: &mut Criterion) {
    let net = topologies::b4();
    let model = FailureModel::new(&net, 42);
    let ds = Dataset::generate(&net, &model, DatasetConfig { epochs: 6000, seed: 1 });
    let (train, test) = ds.train_test_split(0.8);
    let nn = Mlp::train(&train, TrainConfig { epochs: 20, seed: 2, ..Default::default() });
    let event = test[0].clone();
    c.bench_function("pipeline/nn_inference", |b| {
        b.iter(|| black_box(nn.predict_proba(&event)))
    });
}

fn bench_scenario_regen(c: &mut Criterion) {
    let net = topologies::ibm();
    let model = FailureModel::new(&net, 42);
    let probs: Vec<f64> = model.profiles().iter().map(|p| p.p_cut).collect();
    c.bench_function("pipeline/scenario_regen_ibm", |b| {
        b.iter(|| black_box(ScenarioSet::enumerate(&probs, 1, 0.0)))
    });
}

fn bench_tunnel_update(c: &mut Criterion) {
    use prete_core::algorithm1::{update_tunnels, TunnelUpdateConfig};
    let net = topologies::b4();
    let flows = topologies::flows_for(&net, 0.08, 42);
    let tunnels = TunnelSet::initialize(&net, &flows, 4);
    c.bench_function("pipeline/algorithm1_b4", |b| {
        b.iter(|| {
            let mut ts = tunnels.clone();
            black_box(update_tunnels(&net, &mut ts, FiberId(0), TunnelUpdateConfig::default()))
        })
    });
}

criterion_group!(benches, bench_detection, bench_inference, bench_scenario_regen, bench_tunnel_update);
criterion_main!(benches);
