//! Criterion benches for the LP/MIP substrate: the inner loop of every
//! TE computation (Figure 16(b)'s "TE runtime" is dominated by these
//! solves plus tunnel establishment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prete_lp::{solve, solve_mip, LinearProgram, MipOptions, Sense};
use std::hint::black_box;

/// A random-ish dense LP of the given size (deterministic).
fn make_lp(vars: usize, rows: usize) -> LinearProgram {
    let mut lp = LinearProgram::new();
    let vs: Vec<_> = (0..vars)
        .map(|i| lp.add_var(0.0, f64::INFINITY, -((i % 7) as f64 + 1.0)))
        .collect();
    for r in 0..rows {
        let terms: Vec<_> = vs
            .iter()
            .enumerate()
            .filter(|(j, _)| (j + r) % 3 != 0)
            .map(|(j, &v)| (v, 1.0 + ((j * r) % 5) as f64))
            .collect();
        lp.add_constraint(terms, Sense::Le, 50.0 + (r % 11) as f64 * 10.0);
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    for (vars, rows) in [(20, 15), (60, 45), (150, 100)] {
        let lp = make_lp(vars, rows);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}r")),
            &lp,
            |b, lp| b.iter(|| black_box(solve(lp))),
        );
    }
    g.finish();
}

fn bench_mip(c: &mut Criterion) {
    // Scenario-selection-shaped binary program (the Benders master).
    let mut lp = LinearProgram::new();
    let probs = [0.9, 0.04, 0.03, 0.02, 0.01];
    let d: Vec<_> = probs
        .iter()
        .enumerate()
        .map(|(i, _)| lp.add_var(0.0, 1.0, (i as f64) * 0.7))
        .collect();
    lp.add_constraint(
        d.iter().zip(probs).map(|(&v, p)| (v, p)).collect(),
        Sense::Ge,
        0.96,
    );
    c.bench_function("mip/scenario_selection", |b| {
        b.iter(|| black_box(solve_mip(&lp, &d, MipOptions::default())))
    });
}

criterion_group!(benches, bench_simplex, bench_mip);
criterion_main!(benches);
