//! Criterion benches for full TE plans: each scheme's planning time on
//! B4 (the Figure 16(b) "TE runtime" without tunnel establishment) and
//! the availability evaluation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use prete_core::estimator::{ProbabilityEstimator, TrueConditionals};
use prete_core::eval::{AvailabilityEvaluator, EvalConfig};
use prete_core::prelude::*;
use prete_core::scenario::DegradationState;
use prete_core::schemes::{FfcScheme, PreTeScheme, TeContext, TeScheme, TeaVarScheme};
use prete_optical::FailureModel;
use prete_topology::{topologies, FiberId};
use std::hint::black_box;

struct Fixture {
    net: Network,
    model: FailureModel,
    truth: TrueConditionals,
    flows: Vec<Flow>,
    tunnels: TunnelSet,
}

fn fixture() -> Fixture {
    let net = topologies::b4();
    let model = FailureModel::new(&net, 42);
    let truth = TrueConditionals::ground_truth(&net, &model, 100, 1);
    let flows = topologies::flows_for(&net, 0.08, 42);
    let tunnels = TunnelSet::initialize(&net, &flows, 4);
    Fixture { net, model, truth, flows, tunnels }
}

fn bench_plans(c: &mut Criterion) {
    let fx = fixture();
    let ctx = TeContext {
        net: &fx.net,
        model: &fx.model,
        flows: &fx.flows,
        base_tunnels: &fx.tunnels,
    };
    let mut g = c.benchmark_group("plan_b4");
    g.sample_size(10);
    let teavar = TeaVarScheme::new(&fx.model, 0.999);
    g.bench_function("teavar", |b| {
        b.iter(|| black_box(teavar.plan(&ctx, &DegradationState::healthy(), None)))
    });
    let ffc = FfcScheme::one();
    g.bench_function("ffc1", |b| {
        b.iter(|| black_box(ffc.plan(&ctx, &DegradationState::healthy(), None)))
    });
    let prete = PreTeScheme::new(0.999, ProbabilityEstimator::prete(&fx.model, &fx.truth));
    g.bench_function("prete_healthy", |b| {
        b.iter(|| black_box(prete.plan(&ctx, &DegradationState::healthy(), None)))
    });
    g.bench_function("prete_degraded", |b| {
        b.iter(|| {
            black_box(prete.plan(&ctx, &DegradationState::single(FiberId(0)), None))
        })
    });
    g.finish();
}

fn bench_availability_eval(c: &mut Criterion) {
    let fx = fixture();
    let cfg = EvalConfig { top_k_degraded: 3, ..Default::default() };
    let ev = AvailabilityEvaluator::new(
        &fx.net,
        &fx.model,
        fx.flows.clone(),
        &fx.tunnels,
        &fx.truth,
        cfg,
    );
    let teavar = TeaVarScheme::new(&fx.model, 0.999);
    let mut g = c.benchmark_group("availability_b4");
    g.sample_size(10);
    g.bench_function("teavar_top3", |b| b.iter(|| black_box(ev.evaluate(&teavar))));
    g.finish();
}

criterion_group!(benches, bench_plans, bench_availability_eval);
criterion_main!(benches);
