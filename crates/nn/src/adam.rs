//! The Adam optimizer (Kingma & Ba \[23\]) with L2 regularization.
//!
//! Appendix A.2: learning rate 1e-3, L2 weight decay 2e-4, fixed
//! hyper-parameters throughout — "the NN algorithm performs well for a
//! wide range of hyper-parameter values".

use serde::{Deserialize, Serialize};

/// Adam state for one parameter tensor (flat).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    l2: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with the paper's
    /// hyper-parameters (lr 1e-3, L2 2e-4).
    pub fn paper_defaults(n: usize) -> Self {
        Self::new(n, 1e-3, 2e-4)
    }

    /// Creates an optimizer with explicit learning rate and L2 decay.
    pub fn new(n: usize, lr: f64, l2: f64) -> Self {
        assert!(lr > 0.0 && l2 >= 0.0);
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            l2,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one Adam step: `params -= lr * m̂ / (sqrt(v̂) + ε)`,
    /// with the L2 term folded into the gradient.
    ///
    /// # Panics
    /// Panics if `params`/`grads` lengths differ from the state size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + self.l2 * params[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mh = self.m[i] / b1t;
            let vh = self.v[i] / b2t;
            params[i] -= self.lr * mh / (vh.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // minimize (x - 3)^2 → gradient 2(x - 3).
        let mut opt = Adam::new(1, 0.05, 0.0);
        let mut x = [0.0f64];
        for _ in 0..2000 {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn l2_shrinks_toward_zero() {
        // no data gradient, only weight decay: parameters shrink.
        let mut opt = Adam::new(1, 0.01, 0.1);
        let mut x = [5.0f64];
        for _ in 0..5000 {
            opt.step(&mut x, &[0.0]);
        }
        assert!(x[0].abs() < 0.5, "x = {}", x[0]);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Classic Adam property: the first step has magnitude ≈ lr.
        let mut opt = Adam::new(1, 1e-3, 0.0);
        let mut x = [1.0f64];
        opt.step(&mut x, &[123.0]);
        assert!((1.0 - x[0] - 1e-3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, 1e-3, 0.0);
        let mut x = [0.0f64];
        opt.step(&mut x, &[0.0]);
    }
}
