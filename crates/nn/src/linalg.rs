//! Minimal dense linear algebra for the MLP.
//!
//! A deliberately small row-major `f64` matrix — the network is tiny
//! (tens of inputs, 64 hidden units), so clarity beats BLAS here.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data access (for the optimizer).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data access.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = W x` for a column vector `x` (len = cols).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(x)
                    .map(|(&w, &xi)| w * xi)
                    .sum()
            })
            .collect()
    }

    /// `y = Wᵀ x` for a column vector `x` (len = rows).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, yi) in y.iter_mut().enumerate() {
                *yi += self.get(r, c) * xr;
            }
        }
        y
    }
}

/// Numerically stable softmax.
pub fn softmax(x: &[f64]) -> Vec<f64> {
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|&v| (v - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_rectangular() {
        // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c + 1) as f64);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        // transpose: [1,1] * M = [5,7,9]
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_under_large_inputs() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[1] - 1.0 / (1.0 + (-1.0f64).exp())).abs() < 1e-12);
    }
}
