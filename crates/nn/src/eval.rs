//! Model evaluation: Table 5 / Table 8 metrics and the Figure 14
//! per-link prediction-error distribution.

use crate::Predictor;
use prete_obs::Recorder;
use prete_optical::DegradationEvent;
use prete_stats::ConfusionMatrix;
use serde::Serialize;
use std::collections::HashMap;

/// A model's evaluation report (one Table 5 / Table 8 row).
#[derive(Debug, Clone, Serialize)]
pub struct EvalReport {
    /// Model label.
    pub name: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// The underlying confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Evaluates a predictor on test events with the paper's positive
/// definition ("a fail after degradation as positive").
pub fn evaluate(name: &str, model: &dyn Predictor, test: &[&DegradationEvent]) -> EvalReport {
    evaluate_recorded(name, model, test, &Recorder::disabled())
}

/// [`evaluate`] under an `"nn.eval"` span: publishes the Table 5 row
/// as `nn.eval.*` gauges and an `nn-evaluated` summary event instead
/// of printing anything — callers that want a table render the
/// returned [`EvalReport`].
pub fn evaluate_recorded(
    name: &str,
    model: &dyn Predictor,
    test: &[&DegradationEvent],
    obs: &Recorder,
) -> EvalReport {
    let _span = obs.span("nn.eval");
    let mut cm = ConfusionMatrix::new();
    for e in test {
        cm.observe(model.predict(e), e.led_to_cut);
    }
    let report = EvalReport {
        name: name.to_string(),
        precision: cm.precision(),
        recall: cm.recall(),
        f1: cm.f1(),
        accuracy: cm.accuracy(),
        confusion: cm,
    };
    obs.gauge(&format!("nn.eval.{name}.precision"), report.precision);
    obs.gauge(&format!("nn.eval.{name}.recall"), report.recall);
    obs.gauge(&format!("nn.eval.{name}.f1"), report.f1);
    obs.gauge(&format!("nn.eval.{name}.accuracy"), report.accuracy);
    obs.event_with("nn-evaluated", || {
        format!(
            "model={name} n={} precision={:.4} recall={:.4} f1={:.4}",
            test.len(),
            report.precision,
            report.recall,
            report.f1
        )
    });
    report
}

/// Figure 14: per-link prediction error — for each fiber with test
/// events, the absolute difference between the model's mean predicted
/// failure probability and the empirical failure rate.
pub fn per_link_error(model: &dyn Predictor, test: &[&DegradationEvent]) -> Vec<f64> {
    let mut by_fiber: HashMap<usize, (f64, usize, usize)> = HashMap::new();
    for e in test {
        let entry = by_fiber.entry(e.features.fiber_id).or_insert((0.0, 0, 0));
        entry.0 += model.predict_proba(e);
        entry.1 += 1;
        if e.led_to_cut {
            entry.2 += 1;
        }
    }
    let mut errors: Vec<f64> = by_fiber
        .values()
        .map(|&(psum, n, pos)| (psum / n as f64 - pos as f64 / n as f64).abs())
        .collect();
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::TeaVarModel;
    use prete_optical::DegradationFeatures;
    use prete_topology::FiberId;

    fn event(fiber: usize, cut: bool) -> DegradationEvent {
        DegradationEvent {
            fiber: FiberId(fiber),
            start_s: 0,
            duration_s: 5,
            features: DegradationFeatures {
                hour: 0,
                degree_db: 5.0,
                gradient_db: 0.1,
                fluctuation: 2,
                region: 0,
                fiber_id: fiber,
                length_km: 100.0,
                vendor: 0,
            },
            led_to_cut: cut,
            cut_delay_s: None,
        }
    }

    /// A perfect predictor for testing.
    struct Oracle;
    impl Predictor for Oracle {
        fn predict_proba(&self, e: &DegradationEvent) -> f64 {
            if e.led_to_cut {
                1.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn oracle_scores_perfectly() {
        let evs: Vec<DegradationEvent> = (0..10).map(|i| event(i % 2, i % 3 == 0)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let r = evaluate("oracle", &Oracle, &refs);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn teavar_has_zero_pr_on_positives() {
        // Table 5: TeaVar row is ≈ 0 / ≈ 0.
        let evs: Vec<DegradationEvent> = (0..10).map(|i| event(0, i < 4)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let r = evaluate("teavar", &TeaVarModel::new(0.001), &refs);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
    }

    #[test]
    fn per_link_error_zero_for_oracle() {
        let evs: Vec<DegradationEvent> = (0..20).map(|i| event(i % 4, i % 2 == 0)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        // Oracle's mean proba per fiber equals the empirical rate.
        let errs = per_link_error(&Oracle, &refs);
        assert_eq!(errs.len(), 4);
        assert!(errs.iter().all(|&e| e < 1e-12));
    }

    #[test]
    fn per_link_error_large_for_teavar() {
        // All events on a fiber fail → TeaVar error ≈ 1.
        let evs: Vec<DegradationEvent> = (0..5).map(|_| event(0, true)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let errs = per_link_error(&TeaVarModel::new(0.001), &refs);
        assert_eq!(errs.len(), 1);
        assert!(errs[0] > 0.99);
    }
}
