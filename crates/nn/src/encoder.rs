//! Feature encoding (Appendix A.2).
//!
//! *"The variables degree, gradient, fluctuation, and length are scaled
//! into \[0,1\] using Min-Max normalization … The variables time, region
//! and fiber ID are encoded into binary vectors with one-hot encoding.
//! To reduce the curse of dimensionality, we represent variables region
//! and fiber ID with a low-dimensional vector … namely variable
//! embedding."*
//!
//! The encoder is fitted on the training split only (min/max leakage
//! from test data would flatter the metrics) and produces the
//! categorical indices the MLP's embedding tables consume.

use prete_optical::DegradationEvent;
use serde::{Deserialize, Serialize};

/// Which features the model may see — the knob behind the Table 8
/// leave-one-out ablation (`NN w/o fiber ID` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMask {
    /// Include the time-of-day one-hot.
    pub time: bool,
    /// Include the degradation degree.
    pub degree: bool,
    /// Include the gradient.
    pub gradient: bool,
    /// Include the fluctuation count.
    pub fluctuation: bool,
    /// Include the region embedding.
    pub region: bool,
    /// Include the fiber-ID embedding.
    pub fiber_id: bool,
    /// Include the vendor one-hot.
    pub vendor: bool,
}

impl FeatureMask {
    /// All features enabled ("NN-all").
    pub const ALL: FeatureMask = FeatureMask {
        time: true,
        degree: true,
        gradient: true,
        fluctuation: true,
        region: true,
        fiber_id: true,
        vendor: true,
    };

    /// Disables exactly one named feature (Table 8 rows). Recognised
    /// names: `time`, `degree`, `gradient`, `fluctuation`, `region`,
    /// `fiber_id`, `vendor`.
    pub fn without(feature: &str) -> FeatureMask {
        let mut m = FeatureMask::ALL;
        match feature {
            "time" => m.time = false,
            "degree" => m.degree = false,
            "gradient" => m.gradient = false,
            "fluctuation" => m.fluctuation = false,
            "region" => m.region = false,
            "fiber_id" => m.fiber_id = false,
            "vendor" => m.vendor = false,
            other => panic!("unknown feature {other:?}"),
        }
        m
    }
}

/// Min-max range of one continuous feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Range {
    lo: f64,
    hi: f64,
}

impl Range {
    fn fit(values: impl Iterator<Item = f64>) -> Range {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo.is_finite() && hi.is_finite(), "empty feature column");
        Range { lo, hi }
    }

    /// `x* = (x - MIN)/(MAX - MIN)`, clamped for out-of-range test
    /// values.
    fn scale(&self, v: f64) -> f64 {
        if self.hi <= self.lo {
            return 0.5;
        }
        ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
}

/// An event encoded for the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// Scaled continuous features `[degree, gradient, fluctuation,
    /// length]` (masked entries are zeroed).
    pub cont: [f64; 4],
    /// Hour of day (0–23) for the one-hot block.
    pub hour: usize,
    /// Region index for the region embedding.
    pub region: usize,
    /// Fiber index for the fiber embedding.
    pub fiber: usize,
    /// Vendor index for the vendor one-hot.
    pub vendor: usize,
}

/// Fitted encoder: min-max ranges plus category counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureEncoder {
    degree: Range,
    gradient: Range,
    fluctuation: Range,
    length: Range,
    /// Number of region categories.
    pub n_regions: usize,
    /// Number of fiber categories.
    pub n_fibers: usize,
    /// Number of vendor categories.
    pub n_vendors: usize,
    /// The feature mask in effect.
    pub mask: FeatureMask,
}

impl FeatureEncoder {
    /// Fits on the training events.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn fit(train: &[&DegradationEvent], mask: FeatureMask) -> FeatureEncoder {
        Self::fit_recorded(train, mask, &prete_obs::Recorder::disabled())
    }

    /// [`FeatureEncoder::fit`] reporting the fitted category counts as
    /// `encoder.*` gauges and an `encoder-fitted` event.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn fit_recorded(
        train: &[&DegradationEvent],
        mask: FeatureMask,
        obs: &prete_obs::Recorder,
    ) -> FeatureEncoder {
        assert!(!train.is_empty(), "cannot fit encoder on empty training set");
        let enc = Self::fit_inner(train, mask);
        obs.gauge("encoder.n_regions", enc.n_regions as f64);
        obs.gauge("encoder.n_fibers", enc.n_fibers as f64);
        obs.gauge("encoder.n_vendors", enc.n_vendors as f64);
        obs.event_with("encoder-fitted", || {
            format!(
                "samples={} regions={} fibers={} vendors={}",
                train.len(),
                enc.n_regions,
                enc.n_fibers,
                enc.n_vendors
            )
        });
        enc
    }

    fn fit_inner(train: &[&DegradationEvent], mask: FeatureMask) -> FeatureEncoder {
        assert!(!train.is_empty(), "cannot fit encoder on empty training set");
        FeatureEncoder {
            degree: Range::fit(train.iter().map(|e| e.features.degree_db)),
            gradient: Range::fit(train.iter().map(|e| e.features.gradient_db)),
            fluctuation: Range::fit(train.iter().map(|e| e.features.fluctuation as f64)),
            length: Range::fit(train.iter().map(|e| e.features.length_km)),
            n_regions: train.iter().map(|e| e.features.region).max().unwrap() + 1,
            n_fibers: train.iter().map(|e| e.features.fiber_id).max().unwrap() + 1,
            n_vendors: train.iter().map(|e| e.features.vendor).max().unwrap() + 1,
            mask,
        }
    }

    /// Encodes one event. Unknown categorical values (unseen in
    /// training) are clamped to the last known index.
    pub fn encode(&self, e: &DegradationEvent) -> Encoded {
        let f = &e.features;
        let m = self.mask;
        Encoded {
            cont: [
                if m.degree { self.degree.scale(f.degree_db) } else { 0.0 },
                if m.gradient { self.gradient.scale(f.gradient_db) } else { 0.0 },
                if m.fluctuation { self.fluctuation.scale(f.fluctuation as f64) } else { 0.0 },
                self.length.scale(f.length_km),
            ],
            hour: if m.time { f.hour as usize } else { 0 },
            region: if m.region { f.region.min(self.n_regions - 1) } else { 0 },
            fiber: if m.fiber_id { f.fiber_id.min(self.n_fibers - 1) } else { 0 },
            vendor: if m.vendor { f.vendor.min(self.n_vendors - 1) } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prete_optical::DegradationFeatures;
    use prete_topology::FiberId;

    fn event(degree: f64, fiber: usize, hour: u8) -> DegradationEvent {
        DegradationEvent {
            fiber: FiberId(fiber),
            start_s: 0,
            duration_s: 10,
            features: DegradationFeatures {
                hour,
                degree_db: degree,
                gradient_db: 0.2,
                fluctuation: 5,
                region: fiber % 3,
                fiber_id: fiber,
                length_km: 100.0 + fiber as f64,
                vendor: fiber % 2,
            },
            led_to_cut: false,
            cut_delay_s: None,
        }
    }

    #[test]
    fn minmax_scaling_hits_unit_interval() {
        let evs = [event(3.0, 0, 0), event(10.0, 1, 12), event(6.5, 2, 23)];
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let enc = FeatureEncoder::fit(&refs, FeatureMask::ALL);
        let lo = enc.encode(&evs[0]);
        let hi = enc.encode(&evs[1]);
        assert_eq!(lo.cont[0], 0.0);
        assert_eq!(hi.cont[0], 1.0);
        let mid = enc.encode(&evs[2]);
        assert!((mid.cont[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_values_clamped() {
        let evs = [event(4.0, 0, 0), event(8.0, 1, 1)];
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let enc = FeatureEncoder::fit(&refs, FeatureMask::ALL);
        let big = event(100.0, 0, 0);
        assert_eq!(enc.encode(&big).cont[0], 1.0);
        let unseen_fiber = event(5.0, 99, 0);
        assert_eq!(enc.encode(&unseen_fiber).fiber, enc.n_fibers - 1);
    }

    #[test]
    fn mask_zeroes_features() {
        let evs = [event(3.0, 0, 5), event(10.0, 1, 6)];
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let enc = FeatureEncoder::fit(&refs, FeatureMask::without("degree"));
        assert_eq!(enc.encode(&evs[1]).cont[0], 0.0);
        let enc2 = FeatureEncoder::fit(&refs, FeatureMask::without("time"));
        assert_eq!(enc2.encode(&evs[1]).hour, 0);
        let enc3 = FeatureEncoder::fit(&refs, FeatureMask::without("fiber_id"));
        assert_eq!(enc3.encode(&evs[1]).fiber, 0);
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn bad_mask_name_panics() {
        let _ = FeatureMask::without("frobnication");
    }

    #[test]
    fn category_counts() {
        let evs = [event(3.0, 0, 0), event(4.0, 7, 0)];
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let enc = FeatureEncoder::fit(&refs, FeatureMask::ALL);
        assert_eq!(enc.n_fibers, 8);
        assert_eq!(enc.n_regions, 2);
        assert_eq!(enc.n_vendors, 2);
    }
}
