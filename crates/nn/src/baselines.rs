//! The Table 5 baseline predictors.
//!
//! * [`TeaVarModel`] — the static-probability worldview: failure
//!   probability per epoch is `p_i ≪ 1`, so the model (P ≈ 0, R ≈ 0 in
//!   Table 5) never predicts that a degradation becomes a cut;
//! * [`StatisticModel`] — "models failures based on the statistical
//!   relationship between degradations and failures": the per-fiber
//!   empirical cut rate from training data (Laplace-smoothed);
//! * [`DecisionTree`] — CART with Gini impurity over the raw numeric
//!   features, the classical tabular baseline the paper contrasts with
//!   the NN ("traditional models such as decision tree are not
//!   effective in modeling such complex relationships").

use crate::Predictor;
use prete_optical::DegradationEvent;
use serde::{Deserialize, Serialize};

/// The TeaVaR-style naive model: a constant (near zero) probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TeaVarModel {
    /// The static per-epoch failure probability it answers with.
    pub p_static: f64,
}

impl TeaVarModel {
    /// Builds from a static per-epoch probability (`p_i` of §4.1).
    pub fn new(p_static: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_static));
        Self { p_static }
    }
}

impl Predictor for TeaVarModel {
    fn predict_proba(&self, _event: &DegradationEvent) -> f64 {
        self.p_static
    }
}

/// Per-fiber empirical cut rate with Laplace smoothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticModel {
    rates: Vec<f64>,
    global: f64,
}

impl StatisticModel {
    /// Fits per-fiber rates `(cuts + 1) / (events + 2)` on training
    /// events; unseen fibers fall back to the global rate.
    pub fn fit(train: &[&DegradationEvent]) -> Self {
        assert!(!train.is_empty());
        let n_fibers = train.iter().map(|e| e.features.fiber_id).max().unwrap() + 1;
        let mut pos = vec![0usize; n_fibers];
        let mut tot = vec![0usize; n_fibers];
        for e in train {
            tot[e.features.fiber_id] += 1;
            if e.led_to_cut {
                pos[e.features.fiber_id] += 1;
            }
        }
        let global = train.iter().filter(|e| e.led_to_cut).count() as f64 / train.len() as f64;
        let rates = pos
            .iter()
            .zip(&tot)
            .map(|(&p, &t)| (p as f64 + 1.0) / (t as f64 + 2.0))
            .collect();
        Self { rates, global }
    }

    /// The global positive rate observed in training.
    pub fn global_rate(&self) -> f64 {
        self.global
    }
}

impl Predictor for StatisticModel {
    fn predict_proba(&self, event: &DegradationEvent) -> f64 {
        self.rates
            .get(event.features.fiber_id)
            .copied()
            .unwrap_or(self.global)
    }
}

/// A node of the CART tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART decision tree with Gini impurity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    /// Maximum depth used during fitting.
    pub max_depth: usize,
}

/// Numeric feature vector for the tree (categoricals as raw indices —
/// the handicap versus embeddings the paper's comparison highlights).
fn tree_features(e: &DegradationEvent) -> [f64; 8] {
    let f = &e.features;
    [
        f.hour as f64,
        f.degree_db,
        f.gradient_db,
        f.fluctuation as f64,
        f.region as f64,
        f.fiber_id as f64,
        f.length_km,
        f.vendor as f64,
    ]
}

fn gini(pos: usize, tot: usize) -> f64 {
    if tot == 0 {
        return 0.0;
    }
    let p = pos as f64 / tot as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree of depth at most `max_depth`, with a minimum of
    /// `min_leaf` samples per leaf.
    pub fn fit(train: &[&DegradationEvent], max_depth: usize, min_leaf: usize) -> Self {
        assert!(!train.is_empty());
        let rows: Vec<([f64; 8], bool)> =
            train.iter().map(|e| (tree_features(e), e.led_to_cut)).collect();
        let idx: Vec<usize> = (0..rows.len()).collect();
        let root = Self::build(&rows, &idx, max_depth, min_leaf.max(1));
        Self { root, max_depth }
    }

    fn build(rows: &[([f64; 8], bool)], idx: &[usize], depth: usize, min_leaf: usize) -> Node {
        let pos = idx.iter().filter(|&&i| rows[i].1).count();
        let proba = pos as f64 / idx.len() as f64;
        if depth == 0 || idx.len() < 2 * min_leaf || pos == 0 || pos == idx.len() {
            return Node::Leaf { proba };
        }
        // Best split by Gini gain over candidate thresholds (midpoints
        // of sorted unique values, capped to 32 candidates per feature).
        let parent_gini = gini(pos, idx.len());
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for feat in 0..8 {
            let mut vals: Vec<f64> = idx.iter().map(|&i| rows[i].0[feat]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() / 32).max(1);
            for w in vals.windows(2).step_by(step) {
                let thr = (w[0] + w[1]) / 2.0;
                let mut lp = 0usize;
                let mut lt = 0usize;
                for &i in idx {
                    if rows[i].0[feat] <= thr {
                        lt += 1;
                        if rows[i].1 {
                            lp += 1;
                        }
                    }
                }
                let rt = idx.len() - lt;
                if lt < min_leaf || rt < min_leaf {
                    continue;
                }
                let rp = pos - lp;
                let w_gini = (lt as f64 * gini(lp, lt) + rt as f64 * gini(rp, rt))
                    / idx.len() as f64;
                let gain = parent_gini - w_gini;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((feat, thr, gain));
                }
            }
        }
        match best {
            None => Node::Leaf { proba },
            Some((feature, threshold, _)) => {
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| rows[i].0[feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::build(rows, &l, depth - 1, min_leaf)),
                    right: Box::new(Self::build(rows, &r, depth - 1, min_leaf)),
                }
            }
        }
    }

    fn eval(&self, x: &[f64; 8]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { proba } => return *proba,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

impl Predictor for DecisionTree {
    fn predict_proba(&self, event: &DegradationEvent) -> f64 {
        self.eval(&tree_features(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prete_optical::DegradationFeatures;
    use prete_topology::FiberId;

    fn event(fiber: usize, degree: f64, cut: bool) -> DegradationEvent {
        DegradationEvent {
            fiber: FiberId(fiber),
            start_s: 0,
            duration_s: 5,
            features: DegradationFeatures {
                hour: 0,
                degree_db: degree,
                gradient_db: 0.1,
                fluctuation: 2,
                region: 0,
                fiber_id: fiber,
                length_km: 100.0,
                vendor: 0,
            },
            led_to_cut: cut,
            cut_delay_s: None,
        }
    }

    #[test]
    fn teavar_never_positive() {
        let m = TeaVarModel::new(0.003);
        let e = event(0, 9.0, true);
        assert!(!m.predict(&e));
        assert_eq!(m.predict_proba(&e), 0.003);
    }

    #[test]
    fn statistic_learns_per_fiber_rates() {
        // fiber 0: 4/4 cut; fiber 1: 0/4 cut.
        let evs: Vec<DegradationEvent> = (0..8)
            .map(|i| event(i / 4, 5.0, i / 4 == 0))
            .collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let m = StatisticModel::fit(&refs);
        assert!(m.predict(&evs[0]));
        assert!(!m.predict(&evs[7]));
        // Laplace: fiber0 = 5/6, fiber1 = 1/6.
        assert!((m.predict_proba(&evs[0]) - 5.0 / 6.0).abs() < 1e-12);
        assert!((m.predict_proba(&evs[7]) - 1.0 / 6.0).abs() < 1e-12);
        assert!((m.global_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn statistic_unknown_fiber_uses_global() {
        let evs: Vec<DegradationEvent> = (0..4).map(|i| event(0, 5.0, i % 2 == 0)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let m = StatisticModel::fit(&refs);
        let unknown = event(42, 5.0, false);
        assert_eq!(m.predict_proba(&unknown), m.global_rate());
    }

    #[test]
    fn tree_learns_threshold_rule() {
        let evs: Vec<DegradationEvent> = (0..200)
            .map(|i| {
                let degree = 3.0 + (i % 70) as f64 / 10.0;
                event(i % 5, degree, degree > 6.0)
            })
            .collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let tree = DecisionTree::fit(&refs, 4, 5);
        let correct = evs.iter().filter(|e| tree.predict(e) == e.led_to_cut).count();
        assert!(correct as f64 / evs.len() as f64 > 0.95);
    }

    #[test]
    fn tree_pure_leaf_shortcuts() {
        let evs: Vec<DegradationEvent> = (0..10).map(|i| event(i, 5.0, true)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let tree = DecisionTree::fit(&refs, 3, 1);
        assert_eq!(tree.predict_proba(&evs[0]), 1.0);
    }

    #[test]
    fn tree_respects_min_leaf() {
        // With min_leaf = huge, the tree must be a single leaf.
        let evs: Vec<DegradationEvent> =
            (0..20).map(|i| event(i % 3, 3.0 + i as f64 * 0.3, i % 2 == 0)).collect();
        let refs: Vec<&DegradationEvent> = evs.iter().collect();
        let tree = DecisionTree::fit(&refs, 5, 100);
        let p = tree.predict_proba(&evs[0]);
        for e in &evs {
            assert_eq!(tree.predict_proba(e), p, "single-leaf tree is constant");
        }
    }
}
