//! The multi-layer perceptron of Figure 9 / Appendix A.2.
//!
//! Input block = [scaled continuous features | hour one-hot | vendor
//! one-hot | region embedding | fiber-ID embedding] → 64-neuron ReLU
//! hidden layer → 2-neuron decoder → softmax over {normal, failure}.
//! Trained with Adam (lr 1e-3), L2 2e-4, NLL loss, and minority-class
//! oversampling to fix the 4:6 imbalance. One shared model covers all
//! fibers ("one-model-one-fiber … is impractical with low data
//! samples"); the fiber-ID embedding is how per-fiber behaviour enters.

use crate::adam::Adam;
use crate::encoder::{Encoded, FeatureEncoder, FeatureMask};
use crate::linalg::{softmax, Matrix};
use crate::Predictor;
use prete_obs::Recorder;
use prete_optical::DegradationEvent;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Embedding width for the region variable.
const REGION_EMB: usize = 2;
/// Embedding width for the fiber-ID variable.
const FIBER_EMB: usize = 4;
/// One-hot width for the hour of day.
const HOURS: usize = 24;

/// Training hyper-parameters (defaults = Appendix A.2).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the (oversampled) training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f64,
    /// L2 regularization weight (paper: 2e-4).
    pub l2: f64,
    /// Hidden width (paper: 64).
    pub hidden: usize,
    /// RNG seed for init / shuffling / oversampling.
    pub seed: u64,
    /// Feature mask (Table 8 ablations).
    pub mask: FeatureMask,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch: 32,
            lr: 1e-3,
            l2: 2e-4,
            hidden: 64,
            seed: 0,
            mask: FeatureMask::ALL,
        }
    }
}

/// The trained network.
#[derive(Debug, Clone)]
pub struct Mlp {
    encoder: FeatureEncoder,
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    region_emb: Matrix,
    fiber_emb: Matrix,
    d_in: usize,
}

impl Mlp {
    /// Trains a network on the given training events.
    ///
    /// # Panics
    /// Panics if `train` is empty or contains a single class only.
    pub fn train(train: &[&DegradationEvent], cfg: TrainConfig) -> Mlp {
        Self::train_recorded(train, cfg, &Recorder::disabled())
    }

    /// [`Mlp::train`] under an `"nn.train"` span, publishing the
    /// dataset shape as gauges and an `nn-trained` completion event.
    ///
    /// # Panics
    /// Panics if `train` is empty or contains a single class only.
    pub fn train_recorded(
        train: &[&DegradationEvent],
        cfg: TrainConfig,
        obs: &Recorder,
    ) -> Mlp {
        let _span = obs.span("nn.train");
        assert!(!train.is_empty(), "empty training set");
        let pos = train.iter().filter(|e| e.led_to_cut).count();
        assert!(
            pos > 0 && pos < train.len(),
            "training set must contain both classes (positives: {pos}/{})",
            train.len()
        );
        let encoder = FeatureEncoder::fit_recorded(train, cfg.mask, obs);
        obs.gauge("nn.train_samples", train.len() as f64);
        obs.gauge("nn.positives", pos as f64);
        let d_in = 4 + HOURS + encoder.n_vendors + REGION_EMB + FIBER_EMB;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = Mlp {
            w1: xavier(cfg.hidden, d_in, &mut rng),
            b1: vec![0.0; cfg.hidden],
            w2: xavier(2, cfg.hidden, &mut rng),
            b2: vec![0.0; 2],
            region_emb: xavier(encoder.n_regions, REGION_EMB, &mut rng),
            fiber_emb: xavier(encoder.n_fibers, FIBER_EMB, &mut rng),
            encoder,
            d_in,
        };

        // Oversample the minority class to equilibrium (Appendix A.2).
        let mut indices: Vec<usize> = (0..train.len()).collect();
        let (minority, majority): (Vec<usize>, Vec<usize>) = {
            let pos_idx: Vec<usize> =
                (0..train.len()).filter(|&i| train[i].led_to_cut).collect();
            let neg_idx: Vec<usize> =
                (0..train.len()).filter(|&i| !train[i].led_to_cut).collect();
            if pos_idx.len() < neg_idx.len() {
                (pos_idx, neg_idx)
            } else {
                (neg_idx, pos_idx)
            }
        };
        while indices.len() < 2 * majority.len() {
            indices.push(*minority.choose(&mut rng).expect("non-empty minority"));
        }

        let mut opt_w1 = Adam::new(model.w1.data().len(), cfg.lr, cfg.l2);
        let mut opt_b1 = Adam::new(model.b1.len(), cfg.lr, cfg.l2);
        let mut opt_w2 = Adam::new(model.w2.data().len(), cfg.lr, cfg.l2);
        let mut opt_b2 = Adam::new(model.b2.len(), cfg.lr, cfg.l2);
        let mut opt_re = Adam::new(model.region_emb.data().len(), cfg.lr, cfg.l2);
        let mut opt_fe = Adam::new(model.fiber_emb.data().len(), cfg.lr, cfg.l2);

        let encoded: Vec<(Encoded, bool)> = train
            .iter()
            .map(|e| (model.encoder.encode(e), e.led_to_cut))
            .collect();

        for _epoch in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            for chunk in indices.chunks(cfg.batch) {
                let mut g_w1 = vec![0.0; model.w1.data().len()];
                let mut g_b1 = vec![0.0; model.b1.len()];
                let mut g_w2 = vec![0.0; model.w2.data().len()];
                let mut g_b2 = vec![0.0; model.b2.len()];
                let mut g_re = vec![0.0; model.region_emb.data().len()];
                let mut g_fe = vec![0.0; model.fiber_emb.data().len()];
                let scale = 1.0 / chunk.len() as f64;
                for &i in chunk {
                    let (enc, label) = &encoded[i];
                    model.backward(
                        enc, *label, scale, &mut g_w1, &mut g_b1, &mut g_w2, &mut g_b2,
                        &mut g_re, &mut g_fe,
                    );
                }
                opt_w1.step(model.w1.data_mut(), &g_w1);
                opt_b1.step(&mut model.b1, &g_b1);
                opt_w2.step(model.w2.data_mut(), &g_w2);
                opt_b2.step(&mut model.b2, &g_b2);
                opt_re.step(model.region_emb.data_mut(), &g_re);
                opt_fe.step(model.fiber_emb.data_mut(), &g_fe);
            }
        }
        obs.event_with("nn-trained", || {
            format!(
                "samples={} oversampled_to={} epochs={} d_in={d_in}",
                train.len(),
                indices.len(),
                cfg.epochs
            )
        });
        model
    }

    /// Assembles the input vector for an encoded event.
    fn input(&self, e: &Encoded) -> Vec<f64> {
        let mut x = vec![0.0; self.d_in];
        x[..4].copy_from_slice(&e.cont);
        if self.encoder.mask.time {
            x[4 + e.hour] = 1.0;
        }
        let v0 = 4 + HOURS;
        if self.encoder.mask.vendor {
            x[v0 + e.vendor] = 1.0;
        }
        let r0 = v0 + self.encoder.n_vendors;
        if self.encoder.mask.region {
            x[r0..r0 + REGION_EMB].copy_from_slice(self.region_emb.row(e.region));
        }
        let f0 = r0 + REGION_EMB;
        if self.encoder.mask.fiber_id {
            x[f0..f0 + FIBER_EMB].copy_from_slice(self.fiber_emb.row(e.fiber));
        }
        x
    }

    /// Forward pass returning (input, hidden pre-activation, hidden
    /// activation, class probabilities).
    fn forward(&self, e: &Encoded) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let x = self.input(e);
        let mut z1 = self.w1.matvec(&x);
        for (z, b) in z1.iter_mut().zip(&self.b1) {
            *z += b;
        }
        let h: Vec<f64> = z1.iter().map(|&z| z.max(0.0)).collect();
        let mut z2 = self.w2.matvec(&h);
        for (z, b) in z2.iter_mut().zip(&self.b2) {
            *z += b;
        }
        let p = softmax(&z2);
        (x, z1, h, p)
    }

    /// Accumulates gradients of the NLL loss for one sample.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        e: &Encoded,
        label: bool,
        scale: f64,
        g_w1: &mut [f64],
        g_b1: &mut [f64],
        g_w2: &mut [f64],
        g_b2: &mut [f64],
        g_re: &mut [f64],
        g_fe: &mut [f64],
    ) {
        let (x, z1, h, p) = self.forward(e);
        let y = usize::from(label);
        // dL/dz2 = p - onehot(y)
        let mut dz2 = p;
        dz2[y] -= 1.0;
        for d in dz2.iter_mut() {
            *d *= scale;
        }
        let hidden = h.len();
        for (k, &d) in dz2.iter().enumerate() {
            g_b2[k] += d;
            for j in 0..hidden {
                g_w2[k * hidden + j] += d * h[j];
            }
        }
        // dL/dh = W2ᵀ dz2, gated by ReLU.
        let dh = self.w2.matvec_t(&dz2);
        let dz1: Vec<f64> = dh
            .iter()
            .zip(&z1)
            .map(|(&d, &z)| if z > 0.0 { d } else { 0.0 })
            .collect();
        for (k, &d) in dz1.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            g_b1[k] += d;
            for (j, &xj) in x.iter().enumerate() {
                if xj != 0.0 {
                    g_w1[k * self.d_in + j] += d * xj;
                }
            }
        }
        // dL/dx → embedding rows.
        let dx = self.w1.matvec_t(&dz1);
        let v0 = 4 + HOURS;
        let r0 = v0 + self.encoder.n_vendors;
        let f0 = r0 + REGION_EMB;
        if self.encoder.mask.region {
            for k in 0..REGION_EMB {
                g_re[e.region * REGION_EMB + k] += dx[r0 + k];
            }
        }
        if self.encoder.mask.fiber_id {
            for k in 0..FIBER_EMB {
                g_fe[e.fiber * FIBER_EMB + k] += dx[f0 + k];
            }
        }
    }

    /// The fitted encoder (exposed for inspection/tests).
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }
}

impl Predictor for Mlp {
    fn predict_proba(&self, event: &DegradationEvent) -> f64 {
        let enc = self.encoder.encode(event);
        let (_, _, _, p) = self.forward(&enc);
        p[1]
    }
}

fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let s = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-s..s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prete_optical::{DegradationEvent, DegradationFeatures};
    use prete_topology::FiberId;

    /// Synthetic linearly-separable-ish task: high degree → failure.
    fn toy_events(n: usize, seed: u64) -> Vec<DegradationEvent> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let degree: f64 = rng.gen_range(3.0..10.0);
                DegradationEvent {
                    fiber: FiberId(i % 5),
                    start_s: i as u64 * 600,
                    duration_s: 10,
                    features: DegradationFeatures {
                        hour: (i % 24) as u8,
                        degree_db: degree,
                        gradient_db: rng.gen_range(0.0..1.0),
                        fluctuation: rng.gen_range(0..40),
                        region: i % 3,
                        fiber_id: i % 5,
                        length_km: 500.0,
                        vendor: i % 2,
                    },
                    led_to_cut: degree > 6.5,
                    cut_delay_s: None,
                }
            })
            .collect()
    }

    #[test]
    fn learns_separable_rule() {
        let events = toy_events(400, 1);
        let refs: Vec<&DegradationEvent> = events.iter().collect();
        let cfg = TrainConfig { epochs: 60, seed: 2, ..Default::default() };
        let model = Mlp::train(&refs[..300], cfg);
        let correct = refs[300..]
            .iter()
            .filter(|e| model.predict(e) == e.led_to_cut)
            .count();
        // ~0.88 in practice: the degree rule is learned exactly (train
        // accuracy hits 100 %) but the noisy one-hot features cost a
        // few points of generalization on 300 samples.
        let acc = correct as f64 / 100.0;
        assert!(acc > 0.8, "accuracy {acc}");
        // The learned probability must saturate on both sides of the
        // 6.5 dB boundary.
        let mut lo = events[0].clone();
        lo.features.degree_db = 3.5;
        let mut hi = events[0].clone();
        hi.features.degree_db = 9.5;
        assert!(model.predict_proba(&lo) < 0.2);
        assert!(model.predict_proba(&hi) > 0.8);
    }

    #[test]
    fn proba_in_unit_interval() {
        let events = toy_events(100, 3);
        let refs: Vec<&DegradationEvent> = events.iter().collect();
        let model = Mlp::train(&refs, TrainConfig { epochs: 5, ..Default::default() });
        for e in &events {
            let p = model.predict_proba(e);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let events = toy_events(120, 4);
        let refs: Vec<&DegradationEvent> = events.iter().collect();
        let cfg = TrainConfig { epochs: 3, seed: 11, ..Default::default() };
        let a = Mlp::train(&refs, cfg);
        let b = Mlp::train(&refs, cfg);
        for e in &events[..10] {
            assert_eq!(a.predict_proba(e), b.predict_proba(e));
        }
    }

    #[test]
    fn masked_feature_is_ignored() {
        // With degree masked out, two events differing only in degree
        // must get identical predictions.
        let events = toy_events(150, 5);
        let refs: Vec<&DegradationEvent> = events.iter().collect();
        let cfg = TrainConfig {
            epochs: 3,
            mask: FeatureMask::without("degree"),
            ..Default::default()
        };
        let model = Mlp::train(&refs, cfg);
        let mut a = events[0].clone();
        let mut b = events[0].clone();
        a.features.degree_db = 3.0;
        b.features.degree_db = 10.0;
        assert_eq!(model.predict_proba(&a), model.predict_proba(&b));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_training_rejected() {
        let mut events = toy_events(50, 6);
        for e in &mut events {
            e.led_to_cut = false;
        }
        let refs: Vec<&DegradationEvent> = events.iter().collect();
        let _ = Mlp::train(&refs, TrainConfig::default());
    }
}
