//! Failure-prediction models (§4.1.1, §6.3, Appendix A.2/A.6).
//!
//! The paper trains a small multi-layer perceptron to estimate the
//! probability that an observed fiber degradation evolves into a cut
//! within the next TE period. PyTorch is unavailable here, so this
//! crate implements the exact architecture of Appendix A.2 from
//! scratch:
//!
//! * min-max scaling of the continuous features (degree, gradient,
//!   fluctuation, length), one-hot encoding of hour/region/vendor, and
//!   learned low-dimensional **embeddings** for region and fiber ID;
//! * a 64-neuron hidden layer, a 2-neuron decoder layer, and a softmax
//!   output over {normal, failure};
//! * negative log-likelihood loss, **Adam** (lr 1e-3), **L2** weight
//!   decay 2e-4, and **oversampling** of the minority class to fix the
//!   4:6 imbalance;
//! * the 80/20 per-fiber chronological train/test split.
//!
//! Baselines from Table 5: [`baselines::TeaVarModel`] (never predicts
//! failure — the static-probability worldview), [`baselines::StatisticModel`]
//! (per-fiber empirical cut rate), and [`baselines::DecisionTree`]
//! (CART on the raw features). [`eval`] computes precision / recall /
//! F1 / accuracy and the per-link probability error of Figure 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod baselines;
pub mod encoder;
pub mod eval;
pub mod linalg;
pub mod mlp;

pub use baselines::{DecisionTree, StatisticModel, TeaVarModel};
pub use encoder::FeatureEncoder;
pub use eval::{evaluate, per_link_error, EvalReport};
pub use mlp::{Mlp, TrainConfig};

use prete_optical::DegradationEvent;

/// A trained failure predictor: maps a degradation event to the
/// probability that it evolves into a cut within the next TE period.
pub trait Predictor {
    /// Probability of failure (`p_1` of the paper's softmax output).
    fn predict_proba(&self, event: &DegradationEvent) -> f64;

    /// Hard label via `argmax` (§4.1.1: `ŷ = argmax(p)`).
    fn predict(&self, event: &DegradationEvent) -> bool {
        self.predict_proba(event) >= 0.5
    }
}
