//! Failure-prediction models (§4.1.1, §6.3, Appendix A.2/A.6).
//!
//! The paper trains a small multi-layer perceptron to estimate the
//! probability that an observed fiber degradation evolves into a cut
//! within the next TE period. PyTorch is unavailable here, so this
//! crate implements the exact architecture of Appendix A.2 from
//! scratch:
//!
//! * min-max scaling of the continuous features (degree, gradient,
//!   fluctuation, length), one-hot encoding of hour/region/vendor, and
//!   learned low-dimensional **embeddings** for region and fiber ID;
//! * a 64-neuron hidden layer, a 2-neuron decoder layer, and a softmax
//!   output over {normal, failure};
//! * negative log-likelihood loss, **Adam** (lr 1e-3), **L2** weight
//!   decay 2e-4, and **oversampling** of the minority class to fix the
//!   4:6 imbalance;
//! * the 80/20 per-fiber chronological train/test split.
//!
//! Baselines from Table 5: [`baselines::TeaVarModel`] (never predicts
//! failure — the static-probability worldview), [`baselines::StatisticModel`]
//! (per-fiber empirical cut rate), and [`baselines::DecisionTree`]
//! (CART on the raw features). [`eval`] computes precision / recall /
//! F1 / accuracy and the per-link probability error of Figure 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod baselines;
pub mod encoder;
pub mod eval;
pub mod linalg;
pub mod mlp;

pub use baselines::{DecisionTree, StatisticModel, TeaVarModel};
pub use encoder::FeatureEncoder;
pub use eval::{evaluate, per_link_error, EvalReport};
pub use mlp::{Mlp, TrainConfig};

use prete_optical::DegradationEvent;

/// A trained failure predictor: maps a degradation event to the
/// probability that it evolves into a cut within the next TE period.
pub trait Predictor {
    /// Probability of failure (`p_1` of the paper's softmax output).
    fn predict_proba(&self, event: &DegradationEvent) -> f64;

    /// Hard label via `argmax` (§4.1.1: `ŷ = argmax(p)`).
    fn predict(&self, event: &DegradationEvent) -> bool {
        self.predict_proba(event) >= 0.5
    }
}

/// Why a prediction could not be used by the controller.
///
/// In production the inference service is a separate process reached
/// over RPC: it can return garbage (NaN from an overflowed softmax,
/// values outside `[0, 1]` from a stale calibration layer), miss its
/// latency budget, or be down entirely. The controller must treat all
/// four the same way — fall back to the static prior — so they share
/// one error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictError {
    /// The model produced NaN or an infinity.
    NonFinite,
    /// The model produced a finite value outside `[0, 1]`.
    OutOfRange,
    /// Inference finished but blew the caller's latency budget.
    LatencyExceeded,
    /// The predictor is unreachable (RPC failure, crashed process).
    Unavailable,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PredictError::NonFinite => "predictor returned a non-finite probability",
            PredictError::OutOfRange => "predictor returned a probability outside [0, 1]",
            PredictError::LatencyExceeded => "inference exceeded its latency budget",
            PredictError::Unavailable => "predictor unavailable",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PredictError {}

/// A validated prediction together with the (modelled) inference time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Probability of failure, guaranteed finite and in `[0, 1]`.
    pub p_cut: f64,
    /// Modelled inference latency in milliseconds (0 when the caller
    /// does its own latency accounting).
    pub latency_ms: f64,
}

/// Fallible prediction surface used by robustness-aware callers.
///
/// Every infallible [`Predictor`] is trivially a `TryPredictor` whose
/// output is validated for finiteness and range; fault-injecting or
/// RPC-backed predictors implement this trait directly and may return
/// any [`PredictError`].
pub trait TryPredictor {
    /// Predicts, or explains why the result cannot be trusted.
    fn try_predict_proba(&self, event: &DegradationEvent) -> Result<Prediction, PredictError>;
}

impl<P: Predictor + ?Sized> TryPredictor for P {
    fn try_predict_proba(&self, event: &DegradationEvent) -> Result<Prediction, PredictError> {
        let p = self.predict_proba(event);
        if !p.is_finite() {
            return Err(PredictError::NonFinite);
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(PredictError::OutOfRange);
        }
        Ok(Prediction { p_cut: p, latency_ms: 0.0 })
    }
}
