//! The two-layer WAN graph: sites, fibers, and IP links.
//!
//! The paper models the WAN as a directed graph `G = (V, E)` at the IP
//! layer (§4.2), but failures happen at the optical layer: each IP link
//! is mapped onto one or more fiber spans, and a fiber cut removes every
//! IP link riding on it. This module owns that cross-layer mapping.
//!
//! IP links are stored *undirected* with symmetric capacity — tunnels
//! are directed site sequences, and a directed traversal of an
//! undirected link consumes capacity on it (the convention used by the
//! TeaVaR/Flexile artifacts the paper builds on).

use crate::ids::{FiberId, LinkId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A site: an edge router / point of presence (vertex of the graph).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Identifier of this site.
    pub id: SiteId,
    /// Human-readable name ("s1", "nyc", …).
    pub name: String,
    /// Region the site sits in (index into the topology's region list);
    /// regions are an intrinsic fiber feature for failure prediction
    /// (§3.2) and the grouping key of Figure 1(b).
    pub region: usize,
}

/// An optical fiber span between two sites.
///
/// Fibers sharing a conduit are modelled as a single fiber entity, as
/// the paper does ("we consider these fibers as a single entity", §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fiber {
    /// Identifier of this fiber.
    pub id: FiberId,
    /// One endpoint.
    pub a: SiteId,
    /// Other endpoint.
    pub b: SiteId,
    /// Span length in kilometres (an intrinsic prediction feature).
    pub length_km: f64,
    /// Region index (inherited from its endpoints' geography).
    pub region: usize,
    /// Vendor index (an intrinsic prediction feature, Appendix A.6).
    pub vendor: usize,
}

/// An IP-layer link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpLink {
    /// Identifier of this link.
    pub id: LinkId,
    /// One endpoint.
    pub a: SiteId,
    /// Other endpoint.
    pub b: SiteId,
    /// Capacity in Gbps (symmetric).
    pub capacity_gbps: f64,
    /// The fiber spans this link rides on. A cut of *any* of them kills
    /// the link. Most links ride a single span; express links in large
    /// WANs ride several.
    pub fibers: Vec<FiberId>,
}

impl IpLink {
    /// The endpoint opposite `s`, or `None` if `s` is not an endpoint.
    pub fn other(&self, s: SiteId) -> Option<SiteId> {
        if s == self.a {
            Some(self.b)
        } else if s == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether this link rides on fiber `f`.
    pub fn uses_fiber(&self, f: FiberId) -> bool {
        self.fibers.contains(&f)
    }
}

/// The assembled two-layer network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    /// Topology name ("B4", "IBM", "TWAN", …).
    pub name: String,
    sites: Vec<Site>,
    fibers: Vec<Fiber>,
    links: Vec<IpLink>,
    /// adjacency[site] = (neighbor, link) pairs.
    adjacency: Vec<Vec<(SiteId, LinkId)>>,
    /// links_on_fiber[fiber] = links riding it.
    links_on_fiber: Vec<Vec<LinkId>>,
}

impl Network {
    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of fibers.
    pub fn num_fibers(&self) -> usize {
        self.fibers.len()
    }

    /// Number of IP links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All fibers.
    pub fn fibers(&self) -> &[Fiber] {
        &self.fibers
    }

    /// All IP links.
    pub fn links(&self) -> &[IpLink] {
        &self.links
    }

    /// A site by ID.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// A fiber by ID.
    pub fn fiber(&self, id: FiberId) -> &Fiber {
        &self.fibers[id.index()]
    }

    /// An IP link by ID.
    pub fn link(&self, id: LinkId) -> &IpLink {
        &self.links[id.index()]
    }

    /// `(neighbor, link)` pairs adjacent to `s`.
    pub fn neighbors(&self, s: SiteId) -> &[(SiteId, LinkId)] {
        &self.adjacency[s.index()]
    }

    /// IP links riding on fiber `f` — the cross-layer blast radius of a
    /// cut of `f`.
    pub fn links_on_fiber(&self, f: FiberId) -> &[LinkId] {
        &self.links_on_fiber[f.index()]
    }

    /// Total IP capacity (Gbps) lost if fiber `f` is cut — the quantity
    /// whose CDF is Figure 1(b).
    pub fn capacity_lost_by_cut(&self, f: FiberId) -> f64 {
        self.links_on_fiber(f)
            .iter()
            .map(|&l| self.link(l).capacity_gbps)
            .sum()
    }

    /// Whether IP link `l` survives when all fibers in `cut` are cut.
    pub fn link_survives(&self, l: LinkId, cut: &[FiberId]) -> bool {
        !self.link(l).fibers.iter().any(|f| cut.contains(f))
    }

    /// Sum of all IP link capacities (Gbps).
    pub fn total_capacity(&self) -> f64 {
        self.links.iter().map(|l| l.capacity_gbps).sum()
    }

    /// Looks up the link between two adjacent sites, if any. When
    /// several parallel links connect the pair, the lowest-ID one is
    /// returned (use [`Network::links_between`] for all of them).
    pub fn link_between(&self, a: SiteId, b: SiteId) -> Option<LinkId> {
        self.adjacency[a.index()]
            .iter()
            .filter(|&&(n, _)| n == b)
            .map(|&(_, l)| l)
            .min()
    }

    /// All parallel links between two sites.
    pub fn links_between(&self, a: SiteId, b: SiteId) -> Vec<LinkId> {
        self.adjacency[a.index()]
            .iter()
            .filter(|&&(n, _)| n == b)
            .map(|&(_, l)| l)
            .collect()
    }
}

/// Incremental builder for [`Network`], validating the cross-layer
/// mapping as it goes.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    name: String,
    sites: Vec<Site>,
    fibers: Vec<Fiber>,
    links: Vec<IpLink>,
    site_names: HashMap<String, SiteId>,
}

impl NetworkBuilder {
    /// Starts a builder for a topology called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Default::default() }
    }

    /// Adds a site; names must be unique.
    pub fn site(&mut self, name: impl Into<String>, region: usize) -> SiteId {
        let name = name.into();
        assert!(
            !self.site_names.contains_key(&name),
            "duplicate site name {name:?}"
        );
        let id = SiteId(self.sites.len());
        self.site_names.insert(name.clone(), id);
        self.sites.push(Site { id, name, region });
        id
    }

    /// Adds a fiber span between two existing sites.
    pub fn fiber(&mut self, a: SiteId, b: SiteId, length_km: f64, vendor: usize) -> FiberId {
        assert!(a.index() < self.sites.len() && b.index() < self.sites.len());
        assert_ne!(a, b, "self-loop fiber");
        assert!(length_km > 0.0, "fiber length must be positive");
        let id = FiberId(self.fibers.len());
        let region = self.sites[a.index()].region;
        self.fibers.push(Fiber { id, a, b, length_km, region, vendor });
        id
    }

    /// Adds an IP link between two sites riding on `fibers`.
    ///
    /// # Panics
    /// Panics if `fibers` is empty, references unknown fibers, or the
    /// capacity is non-positive.
    pub fn link(
        &mut self,
        a: SiteId,
        b: SiteId,
        capacity_gbps: f64,
        fibers: Vec<FiberId>,
    ) -> LinkId {
        assert!(!fibers.is_empty(), "an IP link must ride on >= 1 fiber");
        assert!(capacity_gbps > 0.0, "capacity must be positive");
        for &f in &fibers {
            assert!(f.index() < self.fibers.len(), "unknown fiber {f}");
        }
        assert_ne!(a, b, "self-loop link");
        let id = LinkId(self.links.len());
        self.links.push(IpLink { id, a, b, capacity_gbps, fibers });
        id
    }

    /// Convenience: adds an IP link that rides on exactly the fiber
    /// between its endpoints.
    pub fn link_on(&mut self, fiber: FiberId, capacity_gbps: f64) -> LinkId {
        let (a, b) = {
            let f = &self.fibers[fiber.index()];
            (f.a, f.b)
        };
        self.link(a, b, capacity_gbps, vec![fiber])
    }

    /// Endpoints of a fiber added so far (useful while constructing
    /// synthetic topologies, before `build`).
    pub fn fiber_endpoints(&self, f: FiberId) -> (SiteId, SiteId) {
        let fb = &self.fibers[f.index()];
        (fb.a, fb.b)
    }

    /// Finalizes the network, building adjacency and cross-layer indexes.
    ///
    /// # Panics
    /// Panics if the IP graph is disconnected (TE over a disconnected
    /// WAN is ill-posed) or empty.
    pub fn build(self) -> Network {
        assert!(!self.sites.is_empty(), "no sites");
        assert!(!self.links.is_empty(), "no IP links");
        let mut adjacency = vec![Vec::new(); self.sites.len()];
        for l in &self.links {
            adjacency[l.a.index()].push((l.b, l.id));
            adjacency[l.b.index()].push((l.a, l.id));
        }
        let mut links_on_fiber = vec![Vec::new(); self.fibers.len()];
        for l in &self.links {
            for &f in &l.fibers {
                links_on_fiber[f.index()].push(l.id);
            }
        }
        let net = Network {
            name: self.name,
            sites: self.sites,
            fibers: self.fibers,
            links: self.links,
            adjacency,
            links_on_fiber,
        };
        // Connectivity check (BFS from site 0).
        let mut seen = vec![false; net.num_sites()];
        let mut queue = vec![SiteId(0)];
        seen[0] = true;
        while let Some(s) = queue.pop() {
            for &(n, _) in net.neighbors(s) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    queue.push(n);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "IP graph of {:?} is disconnected",
            net.name
        );
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3-site illustrative network of Figure 2(a): links s1s2,
    /// s1s3, s2s3, each 10 units of capacity.
    pub(crate) fn triangle() -> Network {
        let mut b = NetworkBuilder::new("triangle");
        let s1 = b.site("s1", 0);
        let s2 = b.site("s2", 0);
        let s3 = b.site("s3", 0);
        let f12 = b.fiber(s1, s2, 100.0, 0);
        let f13 = b.fiber(s1, s3, 100.0, 0);
        let f23 = b.fiber(s2, s3, 100.0, 0);
        b.link_on(f12, 10.0);
        b.link_on(f13, 10.0);
        b.link_on(f23, 10.0);
        b.build()
    }

    #[test]
    fn triangle_shape() {
        let n = triangle();
        assert_eq!(n.num_sites(), 3);
        assert_eq!(n.num_fibers(), 3);
        assert_eq!(n.num_links(), 3);
        assert_eq!(n.total_capacity(), 30.0);
        assert_eq!(n.neighbors(SiteId(0)).len(), 2);
    }

    #[test]
    fn cross_layer_mapping() {
        let n = triangle();
        assert_eq!(n.links_on_fiber(FiberId(0)), &[LinkId(0)]);
        assert_eq!(n.capacity_lost_by_cut(FiberId(1)), 10.0);
        assert!(n.link_survives(LinkId(0), &[FiberId(1)]));
        assert!(!n.link_survives(LinkId(0), &[FiberId(0)]));
    }

    #[test]
    fn multi_fiber_link_dies_with_any_span() {
        let mut b = NetworkBuilder::new("chain");
        let s1 = b.site("s1", 0);
        let s2 = b.site("s2", 0);
        let s3 = b.site("s3", 0);
        let f1 = b.fiber(s1, s2, 50.0, 0);
        let f2 = b.fiber(s2, s3, 50.0, 0);
        b.link_on(f1, 100.0);
        b.link_on(f2, 100.0);
        // Express IP link s1→s3 riding both spans.
        let express = b.link(s1, s3, 100.0, vec![f1, f2]);
        let n = b.build();
        assert!(!n.link_survives(express, &[f1]));
        assert!(!n.link_survives(express, &[f2]));
        assert!(n.link_survives(express, &[]));
        // Cutting f1 loses the s1s2 link and the express link.
        assert_eq!(n.capacity_lost_by_cut(f1), 200.0);
    }

    #[test]
    fn parallel_links() {
        let mut b = NetworkBuilder::new("par");
        let s1 = b.site("s1", 0);
        let s2 = b.site("s2", 0);
        let f = b.fiber(s1, s2, 10.0, 0);
        let l1 = b.link_on(f, 100.0);
        let l2 = b.link_on(f, 100.0);
        // keep graph connected trivially (2 sites, links between them)
        let n = b.build();
        assert_eq!(n.links_between(s1, s2), vec![l1, l2]);
        assert_eq!(n.link_between(s1, s2), Some(l1));
        assert_eq!(n.links_on_fiber(f), &[l1, l2]);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_rejected() {
        let mut b = NetworkBuilder::new("bad");
        let s1 = b.site("s1", 0);
        let s2 = b.site("s2", 0);
        let _s3 = b.site("s3", 0); // never linked
        let f = b.fiber(s1, s2, 10.0, 0);
        b.link_on(f, 100.0);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "duplicate site")]
    fn duplicate_site_name_rejected() {
        let mut b = NetworkBuilder::new("dup");
        b.site("x", 0);
        b.site("x", 0);
    }
}
