//! Tunnels: end-to-end paths assigned to flows.
//!
//! §4.2 *Tunnel initialization*: every flow gets a set of
//! pre-established tunnels computed with both k-shortest-path and
//! fiber-disjoint routing, with the guarantee that *"at least one
//! residual tunnel exists for every flow under each failure scenario"*
//! (single-fiber scenarios). [`TunnelSet::initialize`] implements that
//! procedure; reactive tunnels added by Algorithm 1 (in `prete-core`)
//! are appended with [`TunnelSet::add_reactive`].

use crate::graph::Network;
use crate::ids::{FiberId, FlowId, LinkId, TunnelId};
use crate::paths::{fiber_disjoint_paths, k_shortest_paths, Path};
use crate::traffic::Flow;

/// How a tunnel came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelOrigin {
    /// Established at initialization time (the `T_f` of Table 2).
    PreEstablished,
    /// Established reactively by Algorithm 1 when a degradation was
    /// observed (the `Y_f^s` of Table 2).
    Reactive,
}

/// A tunnel: a concrete path carrying (part of) one flow's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Tunnel {
    /// Identifier, unique within a [`TunnelSet`].
    pub id: TunnelId,
    /// The flow this tunnel belongs to.
    pub flow: FlowId,
    /// The underlying path.
    pub path: Path,
    /// Provenance (pre-established vs reactive).
    pub origin: TunnelOrigin,
}

impl Tunnel {
    /// The indicator `L(t, e)` of Table 2: 1 iff this tunnel uses IP
    /// link `e`.
    pub fn uses_link(&self, e: LinkId) -> bool {
        self.path.links.contains(&e)
    }

    /// Whether the tunnel traverses fiber `f` (and is therefore lost
    /// when `f` is cut).
    pub fn uses_fiber(&self, net: &Network, f: FiberId) -> bool {
        self.path.uses_fiber(net, f)
    }

    /// Whether the tunnel survives a scenario where all of `cut` fail.
    pub fn survives(&self, net: &Network, cut: &[FiberId]) -> bool {
        !cut.iter().any(|&f| self.uses_fiber(net, f))
    }
}

/// All tunnels of all flows, with per-flow indexes.
#[derive(Debug, Clone, Default)]
pub struct TunnelSet {
    tunnels: Vec<Tunnel>,
    by_flow: Vec<Vec<TunnelId>>,
}

impl TunnelSet {
    /// Creates an empty set sized for `num_flows` flows.
    pub fn new(num_flows: usize) -> Self {
        Self { tunnels: Vec::new(), by_flow: vec![Vec::new(); num_flows] }
    }

    /// §4.2 tunnel initialization: for every flow, take the union of
    /// `k`-shortest paths and fiber-disjoint paths (disjoint first so
    /// the survivability guarantee is honoured), capped at
    /// `tunnels_per_flow` distinct tunnels.
    ///
    /// # Panics
    /// Panics if some flow's endpoints are disconnected.
    pub fn initialize(net: &Network, flows: &[Flow], tunnels_per_flow: usize) -> Self {
        assert!(tunnels_per_flow >= 1);
        let mut set = Self::new(flows.len());
        for flow in flows {
            let mut chosen: Vec<Path> = Vec::new();
            // Tunnels are distinct iff their *site routes* differ:
            // parallel wavelength links between the same site pair do
            // not add path diversity.
            let distinct =
                |chosen: &[Path], p: &Path| chosen.iter().all(|c| c.sites != p.sites);
            // Fiber-disjoint paths first: they provide the residual
            // tunnel under any single-fiber cut (and, where the
            // topology permits three disjoint routes, under double
            // cuts — which is what FFC-2 needs to admit anything).
            let disjoint_budget = tunnels_per_flow.saturating_sub(1).clamp(2, 3);
            for p in fiber_disjoint_paths(net, flow.src, flow.dst, disjoint_budget) {
                if chosen.len() < tunnels_per_flow && distinct(&chosen, &p) {
                    chosen.push(p);
                }
            }
            // Then fill with k-shortest paths.
            for p in k_shortest_paths(net, flow.src, flow.dst, tunnels_per_flow + 2) {
                if chosen.len() >= tunnels_per_flow {
                    break;
                }
                if distinct(&chosen, &p) {
                    chosen.push(p);
                }
            }
            assert!(
                !chosen.is_empty(),
                "flow {}→{} has no path",
                net.site(flow.src).name,
                net.site(flow.dst).name
            );
            for path in chosen {
                set.push(flow.id, path, TunnelOrigin::PreEstablished);
            }
        }
        set
    }

    fn push(&mut self, flow: FlowId, path: Path, origin: TunnelOrigin) -> TunnelId {
        let id = TunnelId(self.tunnels.len());
        self.tunnels.push(Tunnel { id, flow, path, origin });
        self.by_flow[flow.index()].push(id);
        id
    }

    /// Appends a reactive tunnel (Algorithm 1 output) for `flow`.
    pub fn add_reactive(&mut self, flow: FlowId, path: Path) -> TunnelId {
        self.push(flow, path, TunnelOrigin::Reactive)
    }

    /// Removes all reactive tunnels, restoring the pre-established set
    /// ("once the failure is repaired … the tunnel is then updated to
    /// its original state", §4.2).
    pub fn clear_reactive(&mut self) {
        self.tunnels.retain(|t| t.origin == TunnelOrigin::PreEstablished);
        for (i, t) in self.tunnels.iter_mut().enumerate() {
            t.id = TunnelId(i);
        }
        for v in &mut self.by_flow {
            v.clear();
        }
        let assignments: Vec<(FlowId, TunnelId)> =
            self.tunnels.iter().map(|t| (t.flow, t.id)).collect();
        for (f, t) in assignments {
            self.by_flow[f.index()].push(t);
        }
    }

    /// All tunnels.
    pub fn tunnels(&self) -> &[Tunnel] {
        &self.tunnels
    }

    /// Number of tunnels.
    pub fn len(&self) -> usize {
        self.tunnels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tunnels.is_empty()
    }

    /// A tunnel by ID.
    pub fn tunnel(&self, id: TunnelId) -> &Tunnel {
        &self.tunnels[id.index()]
    }

    /// Tunnel IDs of a flow (pre-established and reactive).
    pub fn of_flow(&self, f: FlowId) -> &[TunnelId] {
        &self.by_flow[f.index()]
    }

    /// Tunnel IDs of a flow that survive the given fiber cuts — the
    /// `T_{f,q} ∪ Y_{f,q}^s` of Table 2.
    pub fn surviving(&self, net: &Network, f: FlowId, cut: &[FiberId]) -> Vec<TunnelId> {
        self.of_flow(f)
            .iter()
            .copied()
            .filter(|&t| self.tunnel(t).survives(net, cut))
            .collect()
    }

    /// The `Λ` of Algorithm 1 line 6: how many of `f`'s tunnels traverse
    /// the degraded fiber.
    pub fn affected_count(&self, net: &Network, f: FlowId, fiber: FiberId) -> usize {
        self.of_flow(f)
            .iter()
            .filter(|&&t| self.tunnel(t).uses_fiber(net, fiber))
            .count()
    }

    /// Flows with at least one tunnel on `fiber` — the blast radius
    /// reported in Figure 1(c).
    pub fn flows_affected_by(&self, net: &Network, fiber: FiberId) -> Vec<FlowId> {
        let mut out: Vec<FlowId> = Vec::new();
        for (i, ts) in self.by_flow.iter().enumerate() {
            if ts.iter().any(|&t| self.tunnel(t).uses_fiber(net, fiber)) {
                out.push(FlowId(i));
            }
        }
        out
    }

    /// Total tunnels on `fiber`.
    pub fn tunnels_on_fiber(&self, net: &Network, fiber: FiberId) -> usize {
        self.tunnels.iter().filter(|t| t.uses_fiber(net, fiber)).count()
    }

    /// Verifies the §4.2 survivability guarantee: every flow keeps at
    /// least one tunnel under every single-fiber cut. Returns the
    /// violating (flow, fiber) pairs (empty = guarantee holds).
    pub fn survivability_violations(&self, net: &Network) -> Vec<(FlowId, FiberId)> {
        let mut out = Vec::new();
        for (i, _) in self.by_flow.iter().enumerate() {
            let f = FlowId(i);
            for fiber in net.fibers() {
                if self.surviving(net, f, &[fiber.id]).is_empty() {
                    out.push((f, fiber.id));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use crate::ids::SiteId;
    use crate::traffic::Flow;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new("triangle");
        let s1 = b.site("s1", 0);
        let s2 = b.site("s2", 0);
        let s3 = b.site("s3", 0);
        let f12 = b.fiber(s1, s2, 100.0, 0);
        let f13 = b.fiber(s1, s3, 100.0, 0);
        let f23 = b.fiber(s2, s3, 100.0, 0);
        b.link_on(f12, 10.0);
        b.link_on(f13, 10.0);
        b.link_on(f23, 10.0);
        b.build()
    }

    fn flows() -> Vec<Flow> {
        vec![
            Flow { id: FlowId(0), src: SiteId(0), dst: SiteId(1), demand_gbps: 10.0 },
            Flow { id: FlowId(1), src: SiteId(0), dst: SiteId(2), demand_gbps: 10.0 },
        ]
    }

    #[test]
    fn initialize_gives_each_flow_tunnels() {
        let net = triangle();
        let ts = TunnelSet::initialize(&net, &flows(), 2);
        assert_eq!(ts.of_flow(FlowId(0)).len(), 2);
        assert_eq!(ts.of_flow(FlowId(1)).len(), 2);
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn triangle_flows_survive_single_cuts() {
        let net = triangle();
        let ts = TunnelSet::initialize(&net, &flows(), 2);
        assert!(ts.survivability_violations(&net).is_empty());
    }

    #[test]
    fn surviving_excludes_cut_tunnels() {
        let net = triangle();
        let ts = TunnelSet::initialize(&net, &flows(), 2);
        // Cut s1—s2 (fiber 0): flow 0's direct tunnel dies, detour lives.
        let alive = ts.surviving(&net, FlowId(0), &[FiberId(0)]);
        assert_eq!(alive.len(), 1);
        assert!(!ts.tunnel(alive[0]).uses_fiber(&net, FiberId(0)));
    }

    #[test]
    fn affected_count_matches_algorithm1_lambda() {
        let net = triangle();
        let ts = TunnelSet::initialize(&net, &flows(), 2);
        // flow 0 (s1→s2): direct tunnel uses fiber 0, detour s1-s3-s2 doesn't.
        assert_eq!(ts.affected_count(&net, FlowId(0), FiberId(0)), 1);
        // both flows have one tunnel over fiber 0? flow 1 (s1→s3): direct
        // uses fiber 1; detour s1-s2-s3 uses fibers 0 and 2.
        assert_eq!(ts.affected_count(&net, FlowId(1), FiberId(1)), 1);
    }

    #[test]
    fn reactive_tunnels_append_and_clear() {
        let net = triangle();
        let mut ts = TunnelSet::initialize(&net, &flows(), 2);
        let before = ts.len();
        let p = crate::paths::shortest_path(&net, SiteId(0), SiteId(1)).unwrap();
        let id = ts.add_reactive(FlowId(0), p);
        assert_eq!(ts.tunnel(id).origin, TunnelOrigin::Reactive);
        assert_eq!(ts.of_flow(FlowId(0)).len(), 3);
        ts.clear_reactive();
        assert_eq!(ts.len(), before);
        assert!(ts.tunnels().iter().all(|t| t.origin == TunnelOrigin::PreEstablished));
        // IDs must stay dense and consistent after compaction.
        for (i, t) in ts.tunnels().iter().enumerate() {
            assert_eq!(t.id, TunnelId(i));
        }
        assert_eq!(ts.of_flow(FlowId(0)).len(), 2);
    }

    #[test]
    fn flows_affected_by_fiber() {
        let net = triangle();
        let ts = TunnelSet::initialize(&net, &flows(), 2);
        // fiber 0 (s1—s2) carries flow 0's direct tunnel and flow 1's detour.
        let affected = ts.flows_affected_by(&net, FiberId(0));
        assert_eq!(affected, vec![FlowId(0), FlowId(1)]);
        assert_eq!(ts.tunnels_on_fiber(&net, FiberId(0)), 2);
    }
}
