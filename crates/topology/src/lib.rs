//! WAN topology substrate for the PreTE reproduction.
//!
//! Models the two-layer network of the paper (§2, §4.2):
//!
//! * an **optical layer** of fibers between sites — the entities that
//!   degrade and get cut;
//! * an **IP layer** of links riding on one or more fibers — a fiber cut
//!   simultaneously removes every IP link mapped onto it, which is why a
//!   single cut loses multiple Tbps of IP capacity (Figure 1(b)) and
//!   affects a large fraction of flows and tunnels (Figure 1(c)).
//!
//! On top of the graph, the crate provides the path machinery the paper
//! uses for tunnel initialization (§4.2): Yen's k-shortest paths and
//! fiber-disjoint routing, plus shortest-path search in a fiber-deleted
//! subgraph for Algorithm 1's reactive tunnel establishment.
//!
//! The three evaluation topologies of Table 3 are provided by
//! [`topologies::b4`], [`topologies::ibm`] and [`topologies::twan`],
//! matching the table's fiber / IP-link / tunnel counts, and
//! [`traffic`] generates the 24 gravity-model traffic matrices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod ids;
pub mod paths;
pub mod topologies;
pub mod traffic;
pub mod tunnels;

pub use graph::{Fiber, IpLink, Network, NetworkBuilder, Site};
pub use ids::{FiberId, FlowId, LinkId, SiteId, TunnelId};
pub use paths::{fiber_disjoint_paths, k_shortest_paths, shortest_path};
pub use traffic::{Flow, TrafficMatrix};
pub use tunnels::{Tunnel, TunnelSet};
