//! Path-finding over the IP layer.
//!
//! §4.2: *"We use both k-shortest path routing and fiber-disjoint
//! routing algorithms to establish tunnels over the IP layer topology"*.
//! This module provides:
//!
//! * [`shortest_path`] — Dijkstra over site hops with optional banned
//!   fibers (Algorithm 1 deletes the degraded link from the graph before
//!   searching);
//! * [`k_shortest_paths`] — Yen's algorithm for loop-free k-shortest
//!   paths;
//! * [`fiber_disjoint_paths`] — iterated shortest paths, removing the
//!   fibers of each accepted path so later paths share no span with it.
//!
//! Paths are site sequences; edge weights are fiber kilometres (summed
//! over the spans of the chosen IP link) with a small per-hop constant,
//! so shorter physical routes win and hop count breaks ties.

use crate::graph::Network;
use crate::ids::{FiberId, LinkId, SiteId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A path through the IP layer: the site sequence plus the links used.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Visited sites, from source to destination inclusive.
    pub sites: Vec<SiteId>,
    /// Links traversed, `sites.len() - 1` of them.
    pub links: Vec<LinkId>,
    /// Total weight (km + hop penalty).
    pub weight: f64,
}

impl Path {
    /// Source site.
    pub fn src(&self) -> SiteId {
        *self.sites.first().expect("non-empty path")
    }

    /// Destination site.
    pub fn dst(&self) -> SiteId {
        *self.sites.last().expect("non-empty path")
    }

    /// Number of hops (links).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// The set of fibers this path traverses.
    pub fn fibers(&self, net: &Network) -> HashSet<FiberId> {
        self.links
            .iter()
            .flat_map(|&l| net.link(l).fibers.iter().copied())
            .collect()
    }

    /// Whether this path traverses fiber `f`.
    pub fn uses_fiber(&self, net: &Network, f: FiberId) -> bool {
        self.links.iter().any(|&l| net.link(l).uses_fiber(f))
    }
}

/// Weight of traversing `link`: physical kilometres plus a constant to
/// prefer fewer hops among equal-length routes.
fn link_weight(net: &Network, link: LinkId) -> f64 {
    const HOP_PENALTY_KM: f64 = 1.0;
    net.link(link)
        .fibers
        .iter()
        .map(|&f| net.fiber(f).length_km)
        .sum::<f64>()
        + HOP_PENALTY_KM
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    site: SiteId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by site id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite weights")
            .then_with(|| other.site.cmp(&self.site))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `src` to `dst`, ignoring any link that
/// rides on a banned fiber, any banned directed site-move, or any
/// banned site.
///
/// Moves (not links) are banned because parallel wavelength links
/// between the same site pair are interchangeable from a routing
/// perspective: banning one link would just select its twin and
/// produce the same site route again (the classic Yen-with-multigraph
/// pitfall). Among parallel links the lowest-ID one is used.
///
/// Returns `None` when `dst` is unreachable under the bans.
pub fn shortest_path_avoiding(
    net: &Network,
    src: SiteId,
    dst: SiteId,
    banned_fibers: &HashSet<FiberId>,
    banned_moves: &HashSet<(SiteId, SiteId)>,
    banned_sites: &HashSet<SiteId>,
) -> Option<Path> {
    assert_ne!(src, dst, "path endpoints must differ");
    let n = net.num_sites();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(SiteId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, site: src });
    while let Some(HeapEntry { dist: d, site }) = heap.pop() {
        if d > dist[site.index()] {
            continue;
        }
        if site == dst {
            break;
        }
        for &(next, link) in net.neighbors(site) {
            if banned_moves.contains(&(site, next))
                || banned_sites.contains(&next)
                || net.link(link).fibers.iter().any(|f| banned_fibers.contains(f))
            {
                continue;
            }
            let nd = d + link_weight(net, link);
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                prev[next.index()] = Some((site, link));
                heap.push(HeapEntry { dist: nd, site: next });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut sites = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.index()].expect("reachable node has predecessor");
        sites.push(p);
        links.push(l);
        cur = p;
    }
    sites.reverse();
    links.reverse();
    Some(Path { sites, links, weight: dist[dst.index()] })
}

/// Plain shortest path (no bans).
pub fn shortest_path(net: &Network, src: SiteId, dst: SiteId) -> Option<Path> {
    shortest_path_avoiding(
        net,
        src,
        dst,
        &HashSet::new(),
        &HashSet::new(),
        &HashSet::new(),
    )
}

/// Yen's algorithm: up to `k` loop-free shortest paths from `src` to
/// `dst`, sorted by weight. Optionally avoids `banned_fibers` entirely
/// (used by Algorithm 1 to route around a degraded fiber).
pub fn k_shortest_paths_avoiding(
    net: &Network,
    src: SiteId,
    dst: SiteId,
    k: usize,
    banned_fibers: &HashSet<FiberId>,
) -> Vec<Path> {
    assert!(k >= 1, "k must be >= 1");
    let Some(first) =
        shortest_path_avoiding(net, src, dst, banned_fibers, &HashSet::new(), &HashSet::new())
    else {
        return Vec::new();
    };
    let mut result = vec![first];
    let mut candidates: Vec<Path> = Vec::new();
    while result.len() < k {
        let last = result.last().expect("at least one accepted path").clone();
        // For each spur node in the previous path, ban the deviating
        // edges of all accepted paths sharing the root, and the root's
        // interior sites, then search for a spur path.
        for i in 0..last.sites.len() - 1 {
            let spur = last.sites[i];
            let root_sites = &last.sites[..=i];
            let root_links = &last.links[..i];
            // Ban the site-moves previously taken from this spur node
            // by paths sharing the root (parallel links are one move).
            let mut banned_moves: HashSet<(SiteId, SiteId)> = HashSet::new();
            for p in &result {
                if p.sites.len() > i + 1 && p.sites[..=i] == *root_sites {
                    banned_moves.insert((p.sites[i], p.sites[i + 1]));
                }
            }
            let banned_sites: HashSet<SiteId> =
                root_sites[..root_sites.len() - 1].iter().copied().collect();
            if let Some(spur_path) = shortest_path_avoiding(
                net,
                spur,
                dst,
                banned_fibers,
                &banned_moves,
                &banned_sites,
            ) {
                let mut sites = root_sites.to_vec();
                sites.extend_from_slice(&spur_path.sites[1..]);
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur_path.links);
                let weight = links.iter().map(|&l| link_weight(net, l)).sum();
                let cand = Path { sites, links, weight };
                let dup = result.iter().chain(candidates.iter()).any(|p| p.sites == cand.sites);
                if !dup {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the lightest candidate (deterministic tie-break on sites).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, x), (_, y)| {
                x.weight
                    .partial_cmp(&y.weight)
                    .expect("finite")
                    .then_with(|| x.sites.cmp(&y.sites))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        result.push(candidates.swap_remove(best));
    }
    result
}

/// Yen's k-shortest paths without fiber bans.
pub fn k_shortest_paths(net: &Network, src: SiteId, dst: SiteId, k: usize) -> Vec<Path> {
    k_shortest_paths_avoiding(net, src, dst, k, &HashSet::new())
}

/// Fiber-disjoint routing: grows a disjoint path set greedily —
/// shortest path first, its fibers banned for the next search — but
/// restarts the growth from each of the first few shortest paths and
/// keeps the largest (then lightest) set found.
///
/// Plain greedy is not safe here: a single shortest path can zig-zag
/// across every parallel rail of the topology (B4's 0→11 pair does
/// exactly this), stranding a complement that a Suurballe-style
/// rebalancing would find. Restarting from alternative seed paths
/// recovers those pairs whenever any of the seeds belongs to a
/// disjoint set, which covers every mesh topology in this repo.
/// Returns at most `k` mutually fiber-disjoint paths.
pub fn fiber_disjoint_paths(net: &Network, src: SiteId, dst: SiteId, k: usize) -> Vec<Path> {
    assert!(k >= 1);
    const SEEDS: usize = 6;
    let mut best: Vec<Path> = Vec::new();
    let mut best_weight = f64::INFINITY;
    for seed in k_shortest_paths(net, src, dst, SEEDS) {
        let mut banned: HashSet<FiberId> = seed.fibers(net);
        let mut cur = vec![seed];
        while cur.len() < k {
            let Some(p) = shortest_path_avoiding(
                net,
                src,
                dst,
                &banned,
                &HashSet::new(),
                &HashSet::new(),
            ) else {
                break;
            };
            banned.extend(p.fibers(net));
            cur.push(p);
        }
        let total: f64 = cur.iter().map(|p| p.weight).sum();
        if cur.len() > best.len() || (cur.len() == best.len() && total < best_weight) {
            best_weight = total;
            best = cur;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;

    /// 4-site diamond: s0—s1—s3 (short) and s0—s2—s3 (long), plus a
    /// direct long fiber s0—s3.
    fn diamond() -> Network {
        let mut b = NetworkBuilder::new("diamond");
        let s0 = b.site("s0", 0);
        let s1 = b.site("s1", 0);
        let s2 = b.site("s2", 0);
        let s3 = b.site("s3", 0);
        let f01 = b.fiber(s0, s1, 10.0, 0);
        let f13 = b.fiber(s1, s3, 10.0, 0);
        let f02 = b.fiber(s0, s2, 20.0, 0);
        let f23 = b.fiber(s2, s3, 20.0, 0);
        let f03 = b.fiber(s0, s3, 100.0, 0);
        for f in [f01, f13, f02, f23, f03] {
            b.link_on(f, 100.0);
        }
        b.build()
    }

    #[test]
    fn shortest_takes_short_route() {
        let n = diamond();
        let p = shortest_path(&n, SiteId(0), SiteId(3)).unwrap();
        assert_eq!(p.sites, vec![SiteId(0), SiteId(1), SiteId(3)]);
        assert_eq!(p.hops(), 2);
        assert!((p.weight - 22.0).abs() < 1e-9); // 10+10 km + 2 hop penalties
    }

    #[test]
    fn yen_orders_by_weight() {
        let n = diamond();
        let ps = k_shortest_paths(&n, SiteId(0), SiteId(3), 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].sites, vec![SiteId(0), SiteId(1), SiteId(3)]);
        assert_eq!(ps[1].sites, vec![SiteId(0), SiteId(2), SiteId(3)]);
        assert_eq!(ps[2].sites, vec![SiteId(0), SiteId(3)]);
        assert!(ps[0].weight <= ps[1].weight && ps[1].weight <= ps[2].weight);
    }

    #[test]
    fn yen_paths_are_loop_free_and_distinct() {
        let n = diamond();
        let ps = k_shortest_paths(&n, SiteId(0), SiteId(3), 10);
        assert_eq!(ps.len(), 3, "diamond has exactly 3 simple s0→s3 paths");
        for p in &ps {
            let mut seen = HashSet::new();
            assert!(p.sites.iter().all(|s| seen.insert(*s)), "loop in {:?}", p.sites);
        }
    }

    #[test]
    fn disjoint_paths_share_no_fiber() {
        let n = diamond();
        let ps = fiber_disjoint_paths(&n, SiteId(0), SiteId(3), 5);
        assert_eq!(ps.len(), 3);
        let mut all = HashSet::new();
        for p in &ps {
            for f in p.fibers(&n) {
                assert!(all.insert(f), "fiber {f} reused");
            }
        }
    }

    #[test]
    fn avoiding_fiber_routes_around() {
        let n = diamond();
        let banned: HashSet<FiberId> = [FiberId(0)].into_iter().collect(); // s0—s1
        let p = shortest_path_avoiding(
            &n,
            SiteId(0),
            SiteId(3),
            &banned,
            &HashSet::new(),
            &HashSet::new(),
        )
        .unwrap();
        assert!(!p.uses_fiber(&n, FiberId(0)));
        assert_eq!(p.sites, vec![SiteId(0), SiteId(2), SiteId(3)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = NetworkBuilder::new("pair");
        let s0 = b.site("s0", 0);
        let s1 = b.site("s1", 0);
        let f = b.fiber(s0, s1, 5.0, 0);
        b.link_on(f, 10.0);
        let n = b.build();
        let banned: HashSet<FiberId> = [f].into_iter().collect();
        assert!(shortest_path_avoiding(
            &n,
            s0,
            s1,
            &banned,
            &HashSet::new(),
            &HashSet::new()
        )
        .is_none());
    }
}
