//! Flows and traffic matrices.
//!
//! The paper evaluates with 24 traffic matrices per topology (Table 3)
//! — one per hour of a representative day — and sweeps a *demand scale*
//! multiplier in the availability experiments (Figure 13). Production
//! matrices are confidential, so we generate gravity-model demands with
//! a diurnal modulation, the standard synthetic stand-in for WAN
//! traffic.

use crate::graph::Network;
use crate::ids::{FlowId, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A flow: a source–destination site pair with a bandwidth demand
/// (`d_f` of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Identifier of this flow.
    pub id: FlowId,
    /// Ingress site.
    pub src: SiteId,
    /// Egress site.
    pub dst: SiteId,
    /// Demand in Gbps for the current TE interval.
    pub demand_gbps: f64,
}

/// A traffic matrix: a demand per flow, for one TE interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    /// Hour of day this matrix describes (0–23).
    pub hour: usize,
    /// The flows with their demands. Flow IDs are dense `0..n`.
    pub flows: Vec<Flow>,
}

impl TrafficMatrix {
    /// Total demand in Gbps.
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand_gbps).sum()
    }

    /// Returns a copy with every demand multiplied by `scale` — the
    /// demand-scaling knob of Figure 13.
    pub fn scaled(&self, scale: f64) -> TrafficMatrix {
        assert!(scale > 0.0 && scale.is_finite());
        TrafficMatrix {
            hour: self.hour,
            flows: self
                .flows
                .iter()
                .map(|f| Flow { demand_gbps: f.demand_gbps * scale, ..*f })
                .collect(),
        }
    }

    /// Demand of flow `f`.
    pub fn demand(&self, f: FlowId) -> f64 {
        self.flows[f.index()].demand_gbps
    }
}

/// Diurnal modulation factor for a given hour: a smooth day/night curve
/// peaking in the evening (hour 20) at 1.0 and bottoming out around
/// 0.5 before dawn — typical of WAN aggregate traffic.
pub fn diurnal_factor(hour: usize) -> f64 {
    assert!(hour < 24);
    let phase = (hour as f64 - 20.0) / 24.0 * std::f64::consts::TAU;
    0.75 + 0.25 * phase.cos()
}

/// Generates the flow population for a topology: the `n_flows` heaviest
/// gravity-model site pairs, with demands normalized so that total
/// demand at scale 1 equals `load_fraction` of total IP capacity.
///
/// Site weights are random but deterministic in `seed`, modelling the
/// heterogeneous popularity of PoPs.
pub fn gravity_flows(
    net: &Network,
    n_flows: usize,
    load_fraction: f64,
    seed: u64,
) -> Vec<Flow> {
    assert!(n_flows >= 1);
    assert!(load_fraction > 0.0 && load_fraction < 1.0);
    let n = net.num_sites();
    assert!(
        n_flows <= n * (n - 1),
        "asked for {n_flows} flows but only {} ordered pairs exist",
        n * (n - 1)
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Log-normal-ish site weights: bigger and smaller PoPs, with
    // moderate skew (extreme skew concentrates all demand on one hub
    // pair and makes single-cut protection bind on one trunk).
    let weights: Vec<f64> = (0..n).map(|_| (rng.gen::<f64>() * 1.4).exp()).collect();
    let mut pairs: Vec<(SiteId, SiteId, f64)> = Vec::new();
    for s in 0..n {
        for t in 0..n {
            if s != t {
                pairs.push((SiteId(s), SiteId(t), weights[s] * weights[t]));
            }
        }
    }
    // Heaviest pairs first; deterministic tie-break on indices.
    pairs.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .expect("finite weights")
            .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
    });
    pairs.truncate(n_flows);
    let raw_total: f64 = pairs.iter().map(|p| p.2).sum();
    let budget = load_fraction * net.total_capacity();
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst, w))| Flow {
            id: FlowId(i),
            src,
            dst,
            demand_gbps: budget * w / raw_total,
        })
        .collect()
}

/// Generates the 24 hourly traffic matrices of Table 3 from a base flow
/// population: each hour scales all demands by [`diurnal_factor`] plus
/// small per-flow jitter (±5 %).
pub fn hourly_matrices(base: &[Flow], seed: u64) -> Vec<TrafficMatrix> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..24)
        .map(|hour| {
            let f = diurnal_factor(hour);
            TrafficMatrix {
                hour,
                flows: base
                    .iter()
                    .map(|fl| Flow {
                        demand_gbps: fl.demand_gbps * f * (0.95 + 0.1 * rng.gen::<f64>()),
                        ..*fl
                    })
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;

    fn small_net() -> Network {
        let mut b = NetworkBuilder::new("sq");
        let s: Vec<SiteId> = (0..4).map(|i| b.site(format!("s{i}"), 0)).collect();
        for (a, bn) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            let f = b.fiber(s[a], s[bn], 10.0, 0);
            b.link_on(f, 100.0);
        }
        b.build()
    }

    #[test]
    fn gravity_flows_normalized() {
        let net = small_net();
        let flows = gravity_flows(&net, 6, 0.25, 42);
        assert_eq!(flows.len(), 6);
        let total: f64 = flows.iter().map(|f| f.demand_gbps).sum();
        assert!((total - 0.25 * net.total_capacity()).abs() < 1e-9);
        // IDs are dense and in order.
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.id, FlowId(i));
            assert_ne!(f.src, f.dst);
            assert!(f.demand_gbps > 0.0);
        }
    }

    #[test]
    fn gravity_is_deterministic_in_seed() {
        let net = small_net();
        let a = gravity_flows(&net, 5, 0.2, 7);
        let b = gravity_flows(&net, 5, 0.2, 7);
        let c = gravity_flows(&net, 5, 0.2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_peaks_in_evening() {
        assert!((diurnal_factor(20) - 1.0).abs() < 1e-12);
        assert!(diurnal_factor(8) < diurnal_factor(20));
        for h in 0..24 {
            let f = diurnal_factor(h);
            assert!((0.5..=1.0).contains(&f), "hour {h}: {f}");
        }
    }

    #[test]
    fn hourly_matrices_count_and_shape() {
        let net = small_net();
        let flows = gravity_flows(&net, 4, 0.2, 1);
        let tms = hourly_matrices(&flows, 1);
        assert_eq!(tms.len(), 24);
        for (h, tm) in tms.iter().enumerate() {
            assert_eq!(tm.hour, h);
            assert_eq!(tm.flows.len(), 4);
        }
        // Peak hour should carry more traffic than the pre-dawn trough.
        assert!(tms[20].total_demand() > tms[8].total_demand());
    }

    #[test]
    fn scaling() {
        let net = small_net();
        let flows = gravity_flows(&net, 4, 0.2, 1);
        let tm = TrafficMatrix { hour: 0, flows };
        let scaled = tm.scaled(2.5);
        assert!((scaled.total_demand() - 2.5 * tm.total_demand()).abs() < 1e-9);
        assert_eq!(scaled.demand(FlowId(2)), 2.5 * tm.demand(FlowId(2)));
    }
}
