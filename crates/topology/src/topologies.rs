//! The three evaluation topologies of Table 3.
//!
//! | Topology | #Fibers | #IP links | #Tunnels | #Traffic matrices |
//! |----------|---------|-----------|----------|-------------------|
//! | IBM      | 23      | 85        | 340      | 24                |
//! | B4       | 19      | 52        | 208      | 24                |
//! | TWAN     | O(50)   | O(100)    | O(100)+  | 24                |
//!
//! B4 and IBM fiber graphs follow the optical-layer topologies of
//! SMORE \[24\]; the paper generates IP layers over them using the
//! distributions of ARROW \[41\] — we reproduce that by placing parallel
//! IP links (wavelength groups) on each fiber until the Table 3 link
//! counts match exactly. TWAN is confidential, so [`twan`] synthesizes
//! a 25-site, 50-fiber backbone at the disclosed order of magnitude,
//! including express IP links that ride two fiber spans (so one cut can
//! take down several IP adjacencies, as in production).
//!
//! Tunnel counts in Table 3 equal `4 × #flows` with one flow per IP
//! link count (52 / 85), which [`flows_for`] reproduces via the gravity
//! model of [`crate::traffic`].

use crate::graph::{Network, NetworkBuilder};
use crate::ids::SiteId;
use crate::traffic::{gravity_flows, Flow};

/// Capacity of one IP link: a 16-wavelength group at 100 Gbps per
/// wavelength (§5's testbed uses 100 Gbps wavelengths). With 2–4
/// parallel links per fiber this puts the capacity lost by one cut in
/// the 3–13 Tbps range of Figure 1(b).
pub const LINK_CAPACITY_GBPS: f64 = 1600.0;

/// Deterministic pseudo-random span length in km, in [80, 2500).
fn span_length(i: usize) -> f64 {
    // xorshift-style hash for stable, seed-free lengths.
    let mut x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    80.0 + (x % 2420) as f64
}

/// Builds Google's B4-like topology: 12 sites, 19 fibers, 52 IP links.
pub fn b4() -> Network {
    let mut b = NetworkBuilder::new("B4");
    let sites: Vec<SiteId> = (0..12)
        .map(|i| b.site(format!("b4-{i}"), i / 4))
        .collect();
    const EDGES: [(usize, usize); 19] = [
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 3),
        (2, 4),
        (3, 4),
        (3, 5),
        (4, 5),
        (4, 6),
        (5, 6),
        (5, 7),
        (6, 7),
        (6, 8),
        (7, 8),
        (7, 9),
        (8, 10),
        (9, 10),
        (9, 11),
        (10, 11),
    ];
    let fibers: Vec<_> = EDGES
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| b.fiber(sites[x], sites[y], span_length(i), i % 3))
        .collect();
    // 52 links over 19 fibers: the first 14 fibers carry 3 parallel
    // links, the rest 2 (14*3 + 5*2 = 52).
    for (i, &f) in fibers.iter().enumerate() {
        let n = if i < 14 { 3 } else { 2 };
        for _ in 0..n {
            b.link_on(f, LINK_CAPACITY_GBPS);
        }
    }
    b.build()
}

/// Builds the IBM topology: 18 sites, 23 fibers, 85 IP links.
pub fn ibm() -> Network {
    let mut b = NetworkBuilder::new("IBM");
    let sites: Vec<SiteId> = (0..18)
        .map(|i| b.site(format!("ibm-{i}"), i / 6))
        .collect();
    // An 18-site ring plus five chords: 23 fibers, every site at least
    // two-connected so all flows get four distinct tunnel routes.
    const EDGES: [(usize, usize); 23] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
        (14, 15),
        (15, 16),
        (16, 17),
        (17, 0),
        (0, 9),
        (3, 12),
        (6, 15),
        (2, 7),
        (10, 14),
    ];
    let fibers: Vec<_> = EDGES
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| b.fiber(sites[x], sites[y], span_length(100 + i), i % 3))
        .collect();
    // 85 links over 23 fibers: first 16 fibers carry 4, rest 3
    // (16*4 + 7*3 = 85).
    for (i, &f) in fibers.iter().enumerate() {
        let n = if i < 16 { 4 } else { 3 };
        for _ in 0..n {
            b.link_on(f, LINK_CAPACITY_GBPS);
        }
    }
    b.build()
}

/// Builds a synthetic TWAN-scale backbone: 25 sites in 3 regions, 50
/// fibers (ring + chords), 105 IP links including 5 two-span express
/// links.
pub fn twan() -> Network {
    let mut b = NetworkBuilder::new("TWAN");
    let n = 25;
    let sites: Vec<SiteId> = (0..n)
        .map(|i| b.site(format!("twan-{i}"), i * 3 / n))
        .collect();
    let mut fibers = Vec::new();
    // Ring: 25 fibers.
    for i in 0..n {
        fibers.push(b.fiber(sites[i], sites[(i + 1) % n], span_length(200 + i), i % 4));
    }
    // 25 chords at deterministic offsets, skipping duplicates.
    let mut added = 0usize;
    let mut k = 0usize;
    while added < 25 {
        let i = (k * 7) % n;
        let j = (i + 3 + (k % 9)) % n;
        k += 1;
        if i == j || (i + 1) % n == j || (j + 1) % n == i {
            continue;
        }
        // avoid duplicate chords
        let dup = fibers.iter().any(|&f| {
            let fb = &[(sites[i], sites[j]), (sites[j], sites[i])];
            let fi = b_fiber_endpoints(&b, f);
            fb.contains(&fi)
        });
        if dup {
            continue;
        }
        fibers.push(b.fiber(sites[i], sites[j], span_length(300 + k), k % 4));
        added += 1;
    }
    assert_eq!(fibers.len(), 50);
    // 2 IP links per fiber = 100.
    for &f in &fibers {
        b.link_on(f, LINK_CAPACITY_GBPS);
        b.link_on(f, LINK_CAPACITY_GBPS);
    }
    // 5 express links riding two consecutive ring spans (higher-capacity
    // trunks whose loss makes the Figure 1(b) tail reach ~12 Tbps).
    for e in 0..5 {
        let i = e * 5;
        let f1 = fibers[i];
        let f2 = fibers[(i + 1) % n];
        b.link(
            sites[i],
            sites[(i + 2) % n],
            2.0 * LINK_CAPACITY_GBPS,
            vec![f1, f2],
        );
    }
    b.build()
}

// NetworkBuilder doesn't expose fibers publicly; tiny helper for the
// duplicate-chord check during construction.
fn b_fiber_endpoints(b: &NetworkBuilder, f: crate::ids::FiberId) -> (SiteId, SiteId) {
    b.fiber_endpoints(f)
}

/// The flow population the paper pairs with each topology: one flow per
/// IP link (Table 3's tunnel counts are `4 × #links`), gravity-model
/// demands summing to `load_fraction` of capacity at demand scale 1.
pub fn flows_for(net: &Network, load_fraction: f64, seed: u64) -> Vec<Flow> {
    gravity_flows(net, net.num_links().min(net.num_sites() * (net.num_sites() - 1)), load_fraction, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tunnels::TunnelSet;

    #[test]
    fn b4_matches_table3() {
        let n = b4();
        assert_eq!(n.num_sites(), 12);
        assert_eq!(n.num_fibers(), 19);
        assert_eq!(n.num_links(), 52);
    }

    #[test]
    fn ibm_matches_table3() {
        let n = ibm();
        assert_eq!(n.num_sites(), 18);
        assert_eq!(n.num_fibers(), 23);
        assert_eq!(n.num_links(), 85);
    }

    #[test]
    fn twan_order_of_magnitude() {
        let n = twan();
        assert_eq!(n.num_fibers(), 50);
        assert!(n.num_links() >= 100 && n.num_links() <= 120, "{}", n.num_links());
    }

    #[test]
    fn b4_tunnel_count_matches_table3() {
        let n = b4();
        let flows = flows_for(&n, 0.2, 1);
        assert_eq!(flows.len(), 52);
        let ts = TunnelSet::initialize(&n, &flows, 4);
        assert_eq!(ts.len(), 208, "Table 3: B4 has 208 tunnels");
    }

    #[test]
    fn ibm_tunnel_count_matches_table3() {
        let n = ibm();
        let flows = flows_for(&n, 0.2, 1);
        assert_eq!(flows.len(), 85);
        let ts = TunnelSet::initialize(&n, &flows, 4);
        assert_eq!(ts.len(), 340, "Table 3: IBM has 340 tunnels");
    }

    #[test]
    fn all_topologies_have_positive_span_lengths() {
        for net in [b4(), ibm(), twan()] {
            for f in net.fibers() {
                assert!(f.length_km >= 80.0 && f.length_km < 2500.0);
            }
        }
    }

    #[test]
    fn capacity_lost_per_cut_is_in_figure1b_range() {
        // Figure 1(b): cuts lose up to ~12 Tbps; median ≥ 4 Tbps.
        for net in [b4(), ibm(), twan()] {
            let mut losses: Vec<f64> = net
                .fibers()
                .iter()
                .map(|f| net.capacity_lost_by_cut(f.id))
                .collect();
            losses.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let max = *losses.last().unwrap();
            assert!(max <= 13_000.0, "{}: max loss {max}", net.name);
            let median = losses[losses.len() / 2];
            assert!(median >= 3_000.0, "{}: median loss {median}", net.name);
        }
    }
}
