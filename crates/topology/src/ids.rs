//! Strongly-typed index newtypes for network entities.
//!
//! All collections in the workspace are indexed by these IDs; the
//! newtypes prevent mixing, say, a fiber index into an IP-link table —
//! the classic cross-layer bug in WAN tooling.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// Raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type! {
    /// Index of a site (edge router / PoP) — vertex of the WAN graph.
    SiteId
}
id_type! {
    /// Index of an optical fiber span — the entity that degrades / cuts.
    FiberId
}
id_type! {
    /// Index of an IP-layer link riding on one or more fibers.
    LinkId
}
id_type! {
    /// Index of a flow (source-destination site pair with a demand).
    FlowId
}
id_type! {
    /// Index of a tunnel (an end-to-end path assigned to a flow).
    TunnelId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let s = SiteId::from(3);
        assert_eq!(s.index(), 3);
        assert_eq!(s.to_string(), "SiteId(3)");
        assert_eq!(SiteId(3), s);
    }

    #[test]
    fn ordering() {
        assert!(FiberId(1) < FiberId(2));
        let mut v = vec![LinkId(5), LinkId(1), LinkId(3)];
        v.sort();
        assert_eq!(v, vec![LinkId(1), LinkId(3), LinkId(5)]);
    }
}
