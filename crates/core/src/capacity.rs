//! Logical IP trunks: capacity aggregation over parallel links.
//!
//! The Table 3 topologies place several parallel wavelength links on
//! each fiber (that is how 19 fibers carry 52 IP links on B4). Parallel
//! links between the same site pair riding the same fiber set share
//! fate *and* act as one trunk from TE's perspective: a tunnel routed
//! over the adjacency may use any of them. To avoid the path-finder
//! pinning tunnels to one member link and stranding the rest of the
//! trunk, the TE capacity constraints (Eqn 3) are expressed per *trunk
//! group* — the set of links with identical endpoints and fiber set —
//! with the group's aggregate capacity on the right-hand side.

use prete_topology::{FiberId, LinkId, Network, SiteId};

/// Partition of IP links into trunk groups.
#[derive(Debug, Clone)]
pub struct CapacityGroups {
    /// group index per link.
    group_of: Vec<usize>,
    /// aggregate capacity per group (Gbps).
    capacity: Vec<f64>,
    /// representative (lowest-id) link per group.
    representative: Vec<LinkId>,
}

impl CapacityGroups {
    /// Builds the trunk partition for a network.
    pub fn build(net: &Network) -> CapacityGroups {
        // Key: (min endpoint, max endpoint, sorted fiber ids).
        let mut keys: Vec<(SiteId, SiteId, Vec<FiberId>)> = Vec::new();
        let mut group_of = vec![usize::MAX; net.num_links()];
        let mut capacity: Vec<f64> = Vec::new();
        let mut representative: Vec<LinkId> = Vec::new();
        for link in net.links() {
            let (a, b) = if link.a <= link.b { (link.a, link.b) } else { (link.b, link.a) };
            let mut fibers = link.fibers.clone();
            fibers.sort();
            let key = (a, b, fibers);
            let gid = match keys.iter().position(|k| *k == key) {
                Some(g) => g,
                None => {
                    keys.push(key);
                    capacity.push(0.0);
                    representative.push(link.id);
                    keys.len() - 1
                }
            };
            group_of[link.id.index()] = gid;
            capacity[gid] += link.capacity_gbps;
        }
        CapacityGroups { group_of, capacity, representative }
    }

    /// Number of trunk groups.
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// Whether there are no groups (never for a valid network).
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Group index of a link.
    pub fn group_of(&self, l: LinkId) -> usize {
        self.group_of[l.index()]
    }

    /// Aggregate capacity (Gbps) of a group.
    pub fn capacity(&self, group: usize) -> f64 {
        self.capacity[group]
    }

    /// Representative link of a group (useful for diagnostics).
    pub fn representative(&self, group: usize) -> LinkId {
        self.representative[group]
    }

    /// Sums a tunnel path's load contribution per group: returns the
    /// distinct groups a link sequence crosses (a simple path crosses
    /// each at most once).
    pub fn groups_of_path(&self, links: &[LinkId]) -> Vec<usize> {
        let mut gs: Vec<usize> = links.iter().map(|&l| self.group_of(l)).collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prete_topology::{topologies, NetworkBuilder};

    #[test]
    fn b4_groups_equal_fibers() {
        // On B4 every fiber hosts one trunk of 2–3 parallel links.
        let net = topologies::b4();
        let g = CapacityGroups::build(&net);
        assert_eq!(g.len(), net.num_fibers());
        let total: f64 = (0..g.len()).map(|i| g.capacity(i)).sum();
        assert!((total - net.total_capacity()).abs() < 1e-6);
    }

    #[test]
    fn twan_express_links_get_own_group() {
        // TWAN express links ride two fibers: distinct fiber set →
        // distinct group even between the same site pair.
        let net = topologies::twan();
        let g = CapacityGroups::build(&net);
        assert!(g.len() > net.num_fibers(), "{} groups", g.len());
    }

    #[test]
    fn parallel_links_aggregate() {
        let mut b = NetworkBuilder::new("p");
        let s0 = b.site("s0", 0);
        let s1 = b.site("s1", 0);
        let f = b.fiber(s0, s1, 10.0, 0);
        let l1 = b.link_on(f, 100.0);
        let l2 = b.link_on(f, 150.0);
        let net = b.build();
        let g = CapacityGroups::build(&net);
        assert_eq!(g.len(), 1);
        assert_eq!(g.group_of(l1), g.group_of(l2));
        assert_eq!(g.capacity(0), 250.0);
        assert_eq!(g.representative(0), l1);
    }

    #[test]
    fn path_group_dedup() {
        let net = topologies::b4();
        let g = CapacityGroups::build(&net);
        let links: Vec<_> = vec![net.links()[0].id, net.links()[1].id];
        // links 0 and 1 are parallel on fiber 0 → same group, deduped.
        let gs = g.groups_of_path(&links);
        assert_eq!(gs.len(), 1);
    }
}
