//! Degradation states and probabilistic failure scenarios (§4.3).
//!
//! A *degradation state* `s` is a binary vector over fibers marking
//! which are currently degraded. Given per-fiber failure probabilities
//! `p_n` (which depend on `s` through Eqn 1), a *failure scenario*
//! `q̂ = (q̂_1, …, q̂_N)` occurs with the product-form probability
//! `p_q̂ = Π_n (q̂_n p_n + (1 − q̂_n)(1 − p_n))`.
//!
//! Enumerating all `2^N` scenarios is hopeless; like TeaVaR, we keep
//! the scenarios above a probability cutoff with at most `max_cuts`
//! simultaneous cuts — in practice the no-failure scenario plus all
//! single-fiber cuts already cover > 99.9 % of the probability mass at
//! the paper's failure rates.

use prete_topology::FiberId;
use serde::{Deserialize, Serialize};

/// Which fibers are currently degraded (the `s` of Table 2).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradationState {
    /// Degraded fibers, sorted.
    pub degraded: Vec<FiberId>,
}

impl DegradationState {
    /// The all-healthy state.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A state with exactly one degraded fiber.
    pub fn single(f: FiberId) -> Self {
        Self { degraded: vec![f] }
    }

    /// Builds from an unsorted fiber list.
    pub fn new(mut degraded: Vec<FiberId>) -> Self {
        degraded.sort();
        degraded.dedup();
        Self { degraded }
    }

    /// Whether fiber `f` is degraded in this state.
    pub fn is_degraded(&self, f: FiberId) -> bool {
        self.degraded.binary_search(&f).is_ok()
    }

    /// Whether no fiber is degraded.
    pub fn is_healthy(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// One failure scenario: the set of simultaneously cut fibers with its
/// product-form probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Cut fibers (empty = the no-failure scenario).
    pub cut: Vec<FiberId>,
    /// Probability `p_q̂` under the generating per-fiber probabilities.
    pub prob: f64,
}

impl FailureScenario {
    /// Whether this is the no-failure scenario.
    pub fn is_no_failure(&self) -> bool {
        self.cut.is_empty()
    }
}

/// The scenario set `Q_s` for one degradation state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSet {
    /// Scenarios, no-failure first, then by decreasing probability.
    pub scenarios: Vec<FailureScenario>,
}

impl ScenarioSet {
    /// Enumerates scenarios from per-fiber failure probabilities
    /// (`probs[n]` = probability fiber `n` is cut this epoch), keeping
    /// scenarios with at most `max_cuts` simultaneous cuts and
    /// probability at least `cutoff`.
    ///
    /// The no-failure scenario is always included. Fibers with
    /// certainty (`p = 1`, the oracle case) are forced into every
    /// scenario's cut set; fibers with `p = 0` never cut.
    pub fn enumerate(probs: &[f64], max_cuts: usize, cutoff: f64) -> ScenarioSet {
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "invalid probability");
        let n = probs.len();
        let p_none: f64 = probs.iter().map(|p| 1.0 - p).product();
        // Certain fibers (oracle "will cut"): in every scenario.
        let certain: Vec<FiberId> = (0..n)
            .filter(|&i| probs[i] >= 1.0 - 1e-12)
            .map(FiberId)
            .collect();
        let uncertain: Vec<usize> = (0..n)
            .filter(|&i| probs[i] > 1e-15 && probs[i] < 1.0 - 1e-12)
            .collect();
        let base_prob: f64 = uncertain.iter().map(|&i| 1.0 - probs[i]).product();

        let mut scenarios = vec![FailureScenario {
            cut: certain.clone(),
            prob: if certain.is_empty() { p_none } else { base_prob },
        }];
        // Single cuts.
        if max_cuts >= 1 {
            for &i in &uncertain {
                let prob = base_prob / (1.0 - probs[i]) * probs[i];
                if prob >= cutoff {
                    let mut cut = certain.clone();
                    cut.push(FiberId(i));
                    cut.sort();
                    scenarios.push(FailureScenario { cut, prob });
                }
            }
        }
        // Double cuts.
        if max_cuts >= 2 {
            for (a_pos, &i) in uncertain.iter().enumerate() {
                for &j in &uncertain[a_pos + 1..] {
                    let prob = base_prob / ((1.0 - probs[i]) * (1.0 - probs[j]))
                        * probs[i]
                        * probs[j];
                    if prob >= cutoff {
                        let mut cut = certain.clone();
                        cut.push(FiberId(i));
                        cut.push(FiberId(j));
                        cut.sort();
                        scenarios.push(FailureScenario { cut, prob });
                    }
                }
            }
        }
        assert!(max_cuts <= 2, "scenario enumeration supports at most double cuts");
        // No-failure first, then by decreasing probability.
        scenarios[1..].sort_by(|x, y| {
            y.prob.partial_cmp(&x.prob).expect("finite").then_with(|| x.cut.cmp(&y.cut))
        });
        ScenarioSet { scenarios }
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty (never: the no-failure scenario is
    /// always present).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Total probability mass covered by the kept scenarios.
    pub fn covered_mass(&self) -> f64 {
        self.scenarios.iter().map(|s| s.prob).sum()
    }

    /// The scenarios in which fiber `f` is cut.
    pub fn cutting(&self, f: FiberId) -> impl Iterator<Item = &FailureScenario> {
        self.scenarios.iter().filter(move |s| s.cut.contains(&f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_scenarios() {
        // The Figure 2 example: p = (0.005, 0.009, 0.001).
        let s = ScenarioSet::enumerate(&[0.005, 0.009, 0.001], 2, 0.0);
        // 1 + 3 singles + 3 doubles
        assert_eq!(s.len(), 7);
        assert!(s.scenarios[0].is_no_failure());
        let p0 = 0.995f64 * 0.991 * 0.999;
        assert!((s.scenarios[0].prob - p0).abs() < 1e-12);
        // Highest-probability single cut is fiber 1 (p=0.009).
        assert_eq!(s.scenarios[1].cut, vec![FiberId(1)]);
        // Mass of kept scenarios ≈ 1 (triples excluded, tiny).
        assert!(s.covered_mass() > 0.999_999);
    }

    #[test]
    fn cutoff_prunes() {
        let s = ScenarioSet::enumerate(&[0.005, 0.009, 0.001], 2, 1e-4);
        // doubles have prob ~1e-5..1e-6 → pruned; singles ~1e-3 kept.
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn oracle_certain_failure() {
        // Oracle knows fiber 0 will fail: p = 1 → every scenario cuts 0.
        let s = ScenarioSet::enumerate(&[1.0, 0.01, 0.0], 1, 0.0);
        assert!(s.scenarios.iter().all(|q| q.cut.contains(&FiberId(0))));
        assert!(s.scenarios.iter().all(|q| !q.cut.contains(&FiberId(2))));
        assert!((s.covered_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_certain_survival() {
        // Oracle knows nothing fails: only the no-failure scenario.
        let s = ScenarioSet::enumerate(&[0.0, 0.0], 2, 0.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.scenarios[0].prob, 1.0);
    }

    #[test]
    fn probabilities_form_product() {
        let probs = [0.1, 0.2];
        let s = ScenarioSet::enumerate(&probs, 2, 0.0);
        assert_eq!(s.len(), 4);
        assert!((s.covered_mass() - 1.0).abs() < 1e-12);
        let both = s
            .scenarios
            .iter()
            .find(|q| q.cut.len() == 2)
            .expect("double scenario");
        assert!((both.prob - 0.02).abs() < 1e-12);
    }

    #[test]
    fn degradation_state_queries() {
        let s = DegradationState::new(vec![FiberId(3), FiberId(1), FiberId(3)]);
        assert_eq!(s.degraded, vec![FiberId(1), FiberId(3)]);
        assert!(s.is_degraded(FiberId(1)));
        assert!(!s.is_degraded(FiberId(2)));
        assert!(!s.is_healthy());
        assert!(DegradationState::healthy().is_healthy());
    }

    #[test]
    fn single_cut_mass_dominates_at_paper_rates() {
        // At p ~ 0.003 per fiber over 20 fibers, no-failure + singles
        // cover > 99.9 % of the mass — the cutoff rationale.
        let probs = vec![0.003; 20];
        let s = ScenarioSet::enumerate(&probs, 1, 0.0);
        assert_eq!(s.len(), 21);
        assert!(s.covered_mass() > 0.998, "mass {}", s.covered_mass());
    }
}
