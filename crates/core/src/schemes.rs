//! The benchmark TE schemes of §6.1 behind a common trait.
//!
//! | Scheme  | Failure model      | Tunnel updates | Reaction (Table 9) |
//! |---------|--------------------|----------------|---------------------|
//! | ECMP    | none               | no             | none                |
//! | FFC-k   | worst-case ≤ k     | no             | local, ms           |
//! | TeaVaR  | static `p_i`       | no             | local, ms           |
//! | ARROW   | static `p_i`       | no             | restoration, 8 s    |
//! | Flexile | static `p_i`       | no             | recompute, seconds  |
//! | PreTE   | dynamic (Eqn 1)    | **yes** (Alg 1)| local, ms           |
//!
//! Each scheme produces a [`Plan`]: a tunnel set, a per-tunnel
//! allocation, and per-flow admitted bandwidth. The availability
//! evaluator ([`crate::eval`]) replays failure scenarios against plans
//! and charges reaction-time outages per the scheme's
//! [`ReactionModel`].

use crate::algorithm1::{update_tunnels, TunnelUpdateConfig};
use crate::capacity::CapacityGroups;
use crate::estimator::ProbabilityEstimator;
use crate::optimizer::{SolveMethod, TeProblem, TeSolver};
use crate::scenario::{DegradationState, ScenarioSet};
use prete_lp::{solve, LinearProgram, Sense, SolveStatus, VarId};
use prete_optical::FailureModel;
use prete_topology::{FiberId, Flow, Network, TunnelSet};

/// Shared planning context.
#[derive(Debug)]
pub struct TeContext<'a> {
    /// The network.
    pub net: &'a Network,
    /// The failure model (source of static probabilities).
    pub model: &'a FailureModel,
    /// Flows with (possibly scaled) demands.
    pub flows: &'a [Flow],
    /// Pre-established tunnels.
    pub base_tunnels: &'a TunnelSet,
}

/// How the scheme reacts when a failure actually happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReactionModel {
    /// No reaction at all (ECMP): losses persist for the epoch.
    None,
    /// Rate adaptation at the affected endpoints — milliseconds, no
    /// measurable outage when residual capacity suffices.
    LocalRateAdaptation,
    /// Centralized recomputation (Flexile): affected flows lose traffic
    /// for the convergence time even when the recomputed policy is
    /// perfect.
    CentralizedRecompute {
        /// End-to-end convergence time in seconds (§2.1: minutes of
        /// partial loss; default 120 s including tunnel setup).
        convergence_s: f64,
    },
    /// Optical restoration (ARROW): lost wavelengths are rebuilt after
    /// a fixed latency; flows relying on restored capacity lose traffic
    /// in the meantime.
    OpticalRestoration {
        /// Restoration latency (paper: 8 s).
        latency_s: f64,
        /// Fraction of lost tunnel bandwidth that restoration recovers.
        restore_fraction: f64,
    },
}

/// A computed TE policy.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Tunnels the plan uses (base + reactive for PreTE).
    pub tunnels: TunnelSet,
    /// Allocation per tunnel (indexed by tunnel id).
    pub allocation: Vec<f64>,
    /// Admitted bandwidth per flow (`b_f ≤ d_f`; equals `d_f` for
    /// schemes that do not admission-control).
    pub admitted: Vec<f64>,
}

impl Plan {
    /// Bandwidth delivered to flow index `f` when `cut` fibers fail,
    /// **before** any reaction: surviving tunnels send their allocated
    /// rates, scaled down per trunk if the surviving load oversubscribes
    /// a trunk (only ECMP ever does).
    pub fn delivered(
        &self,
        net: &Network,
        groups: &CapacityGroups,
        f: usize,
        flows: &[Flow],
        cut: &[FiberId],
    ) -> f64 {
        // Surviving per-group load.
        let mut load = vec![0.0; groups.len()];
        for t in self.tunnels.tunnels() {
            if self.allocation[t.id.index()] > 0.0 && t.survives(net, cut) {
                for g in groups.groups_of_path(&t.path.links) {
                    load[g] += self.allocation[t.id.index()];
                }
            }
        }
        let flow_id = flows[f].id;
        let mut total = 0.0;
        for &tid in self.tunnels.of_flow(flow_id) {
            let t = self.tunnels.tunnel(tid);
            let a = self.allocation[tid.index()];
            if a <= 0.0 || !t.survives(net, cut) {
                continue;
            }
            let mut factor: f64 = 1.0;
            for g in groups.groups_of_path(&t.path.links) {
                if load[g] > groups.capacity(g) {
                    factor = factor.min(groups.capacity(g) / load[g]);
                }
            }
            total += a * factor;
        }
        total.min(self.admitted[f])
    }

    /// Allocation lost by flow `f` under `cut` (used by the ARROW
    /// restoration model).
    pub fn killed_allocation(&self, net: &Network, f: usize, flows: &[Flow], cut: &[FiberId]) -> f64 {
        self.tunnels
            .of_flow(flows[f].id)
            .iter()
            .filter(|&&t| !self.tunnels.tunnel(t).survives(net, cut))
            .map(|&t| self.allocation[t.index()])
            .sum()
    }
}

/// A TE scheme: computes plans and declares its reaction behaviour.
pub trait TeScheme {
    /// Scheme label for reports.
    fn name(&self) -> String;
    /// Post-failure reaction model.
    fn reaction(&self) -> ReactionModel;
    /// Whether the plan depends on the degradation state (PreTE) or is
    /// computed once (static schemes).
    fn state_aware(&self) -> bool {
        false
    }
    /// Computes the plan. `probs_override` replaces the scheme's own
    /// per-fiber probabilities (the evaluator uses it for the oracle's
    /// certainty splits); schemes that ignore probabilities ignore it.
    fn plan(
        &self,
        ctx: &TeContext<'_>,
        state: &DegradationState,
        probs_override: Option<&[f64]>,
    ) -> Plan;
}

// ---------------------------------------------------------------- ECMP

/// ECMP: split each flow evenly over its tunnels, ignore failures and
/// capacities (overload handled by the delivery model).
#[derive(Debug, Clone, Copy, Default)]
pub struct EcmpScheme;

impl TeScheme for EcmpScheme {
    fn name(&self) -> String {
        "ECMP".into()
    }

    fn reaction(&self) -> ReactionModel {
        ReactionModel::None
    }

    fn plan(&self, ctx: &TeContext<'_>, _state: &DegradationState, _p: Option<&[f64]>) -> Plan {
        let tunnels = ctx.base_tunnels.clone();
        let mut allocation = vec![0.0; tunnels.len()];
        for flow in ctx.flows {
            let ts = tunnels.of_flow(flow.id);
            let share = flow.demand_gbps / ts.len() as f64;
            for &t in ts {
                allocation[t.index()] = share;
            }
        }
        let admitted = ctx.flows.iter().map(|f| f.demand_gbps).collect();
        Plan { tunnels, allocation, admitted }
    }
}

// ----------------------------------------------------------------- FFC

/// FFC-k (Liu et al. \[26\]): maximize admitted bandwidth with a
/// *guarantee* of zero loss under any `k` simultaneous fiber cuts.
///
/// Solved with lazy worst-case row generation: start from the
/// no-failure constraints, find each flow's worst ≤ k-cut against the
/// current allocation, add violated rows, repeat. Exact because the
/// separation step enumerates the (small) set of fibers the flow's
/// tunnels actually use.
#[derive(Debug, Clone, Copy)]
pub struct FfcScheme {
    /// Number of simultaneous cuts to guarantee against (1 or 2).
    pub k: usize,
}

impl FfcScheme {
    /// FFC-1.
    pub fn one() -> Self {
        Self { k: 1 }
    }

    /// FFC-2.
    pub fn two() -> Self {
        Self { k: 2 }
    }
}

/// Shared helper: LP maximizing Σ b_f subject to trunk capacities and a
/// set of per-flow survival rows. Returns (allocation, admitted).
struct ThroughputLp<'p> {
    lp: LinearProgram,
    a_vars: Vec<VarId>,
    b_vars: Vec<VarId>,
    ctx: &'p TeContext<'p>,
    tunnels: &'p TunnelSet,
}

impl<'p> ThroughputLp<'p> {
    fn new(ctx: &'p TeContext<'p>, tunnels: &'p TunnelSet, groups: &CapacityGroups) -> Self {
        let mut lp = LinearProgram::new();
        let a_vars: Vec<VarId> =
            (0..tunnels.len()).map(|_| lp.var_nonneg(0.0)).collect();
        // maximize Σ b_f → minimize -Σ b_f.
        let b_vars: Vec<VarId> = ctx
            .flows
            .iter()
            .map(|f| lp.var_bounded(0.0, f.demand_gbps, -1.0))
            .collect();
        // Fairness tie-break: a plain Σ b_f objective has degenerate
        // optima that zero out individual flows. A small bonus on the
        // worst admitted fraction `z` picks the fair vertex among
        // equal-throughput optima without sacrificing total throughput.
        let total_demand: f64 = ctx.flows.iter().map(|f| f.demand_gbps).sum();
        let z = lp.var_unit(-0.01 * total_demand);
        for (f, flow) in ctx.flows.iter().enumerate() {
            if flow.demand_gbps > 0.0 {
                // b_f − d_f·z ≥ 0  ⇔  z ≤ b_f / d_f.
                lp.add_constraint(
                    vec![(b_vars[f], 1.0), (z, -flow.demand_gbps)],
                    Sense::Ge,
                    0.0,
                );
            }
        }
        let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); groups.len()];
        for t in tunnels.tunnels() {
            for g in groups.groups_of_path(&t.path.links) {
                group_terms[g].push((a_vars[t.id.index()], 1.0));
            }
        }
        for (g, terms) in group_terms.into_iter().enumerate() {
            lp.add_constraint(terms, Sense::Le, groups.capacity(g));
        }
        Self { lp, a_vars, b_vars, ctx, tunnels }
    }

    /// Adds `Σ_{t surviving cut} a_t ≥ b_f`.
    fn add_survival_row(&mut self, f: usize, cut: &[FiberId]) {
        let flow_id = self.ctx.flows[f].id;
        let mut terms: Vec<(VarId, f64)> = self
            .tunnels
            .of_flow(flow_id)
            .iter()
            .filter(|&&t| self.tunnels.tunnel(t).survives(self.ctx.net, cut))
            .map(|&t| (self.a_vars[t.index()], 1.0))
            .collect();
        terms.push((self.b_vars[f], -1.0));
        self.lp.add_constraint(terms, Sense::Ge, 0.0);
    }

    fn solve(&self) -> (Vec<f64>, Vec<f64>) {
        let sol = solve(&self.lp);
        assert_eq!(sol.status, SolveStatus::Optimal, "throughput LP unsolvable");
        (
            self.a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
            self.b_vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        )
    }
}

impl TeScheme for FfcScheme {
    fn name(&self) -> String {
        format!("FFC-{}", self.k)
    }

    fn reaction(&self) -> ReactionModel {
        ReactionModel::LocalRateAdaptation
    }

    fn plan(&self, ctx: &TeContext<'_>, _state: &DegradationState, _p: Option<&[f64]>) -> Plan {
        assert!(self.k >= 1 && self.k <= 2, "FFC-k supports k ∈ {{1,2}}");
        let groups = CapacityGroups::build(ctx.net);
        let tunnels = ctx.base_tunnels.clone();
        let mut builder = ThroughputLp::new(ctx, &tunnels, &groups);
        for f in 0..ctx.flows.len() {
            builder.add_survival_row(f, &[]);
        }
        // Per-flow fiber universe (only these can hurt the flow).
        let fiber_sets: Vec<Vec<FiberId>> = ctx
            .flows
            .iter()
            .map(|flow| {
                let mut fs: Vec<FiberId> = tunnels
                    .of_flow(flow.id)
                    .iter()
                    .flat_map(|&t| tunnels.tunnel(t).path.fibers(ctx.net))
                    .collect();
                fs.sort();
                fs.dedup();
                fs
            })
            .collect();
        // Lazy separation loop.
        let mut added: std::collections::HashSet<(usize, Vec<FiberId>)> =
            std::collections::HashSet::new();
        let (mut allocation, mut admitted);
        loop {
            let (a, b) = builder.solve();
            allocation = a;
            admitted = b;
            let mut violated = 0usize;
            for f in 0..ctx.flows.len() {
                if let Some(cut) = worst_cut(
                    ctx.net,
                    &tunnels,
                    &allocation,
                    ctx.flows[f].id,
                    &fiber_sets[f],
                    self.k,
                ) {
                    let surviving: f64 = tunnels
                        .of_flow(ctx.flows[f].id)
                        .iter()
                        .filter(|&&t| tunnels.tunnel(t).survives(ctx.net, &cut))
                        .map(|&t| allocation[t.index()])
                        .sum();
                    if surviving + 1e-7 < admitted[f] && added.insert((f, cut.clone())) {
                        builder.add_survival_row(f, &cut);
                        violated += 1;
                    }
                }
            }
            if violated == 0 {
                break;
            }
        }
        Plan { tunnels, allocation, admitted }
    }
}

/// The worst ≤ `k`-fiber cut for a flow against an allocation: the cut
/// maximizing killed allocation, from the flow's own fiber universe.
fn worst_cut(
    net: &Network,
    tunnels: &TunnelSet,
    allocation: &[f64],
    flow: prete_topology::FlowId,
    fibers: &[FiberId],
    k: usize,
) -> Option<Vec<FiberId>> {
    let kill = |cut: &[FiberId]| -> f64 {
        tunnels
            .of_flow(flow)
            .iter()
            .filter(|&&t| !tunnels.tunnel(t).survives(net, cut))
            .map(|&t| allocation[t.index()])
            .sum()
    };
    let mut best: Option<(f64, Vec<FiberId>)> = None;
    let mut consider = |cut: Vec<FiberId>| {
        let v = kill(&cut);
        if best.as_ref().map_or(v > 0.0, |(bv, _)| v > *bv) {
            best = Some((v, cut));
        }
    };
    for (i, &fi) in fibers.iter().enumerate() {
        consider(vec![fi]);
        if k >= 2 {
            for &fj in &fibers[i + 1..] {
                let mut c = vec![fi, fj];
                c.sort();
                consider(c);
            }
        }
    }
    best.map(|(_, c)| c)
}

// -------------------------------------------------------------- TeaVaR

/// TeaVaR (Bogle et al. \[6\]): maximize admitted bandwidth such that the
/// network carries *all* admitted traffic in a scenario set of total
/// probability ≥ β (the joint availability bound of §2.2's worked
/// example). Scenario selection is by decreasing probability, using the
/// **static** failure probabilities.
#[derive(Debug, Clone)]
pub struct TeaVarScheme {
    /// Availability bound β.
    pub beta: f64,
    /// The static probability estimator.
    pub estimator: ProbabilityEstimator,
}

impl TeaVarScheme {
    /// Builds TeaVaR with the static estimator of `model`.
    pub fn new(model: &FailureModel, beta: f64) -> Self {
        Self { beta, estimator: ProbabilityEstimator::static_model(model) }
    }

    fn selected_scenarios(&self, probs: &[f64], beta: f64) -> ScenarioSet {
        let all = ScenarioSet::enumerate(probs, 1, 0.0);
        let mut mass = 0.0;
        let mut kept = Vec::new();
        for s in all.scenarios {
            if mass >= beta {
                break;
            }
            mass += s.prob;
            kept.push(s);
        }
        // The single-cut enumeration can fall short of β when the
        // static cut probabilities are high (deeper scenarios hold the
        // residual mass). Protecting everything enumerated is then the
        // strongest guarantee available — the same clamp the optimizer
        // applies to its knapsack rows — and strictly better than
        // aborting the scheme.
        ScenarioSet { scenarios: kept }
    }
}

impl TeScheme for TeaVarScheme {
    fn name(&self) -> String {
        "TeaVaR".into()
    }

    fn reaction(&self) -> ReactionModel {
        ReactionModel::LocalRateAdaptation
    }

    fn plan(&self, ctx: &TeContext<'_>, state: &DegradationState, probs_override: Option<&[f64]>) -> Plan {
        let probs = probs_override
            .map(<[f64]>::to_vec)
            .unwrap_or_else(|| self.estimator.probabilities(state));
        let selected = self.selected_scenarios(&probs, self.beta);
        let groups = CapacityGroups::build(ctx.net);
        let tunnels = ctx.base_tunnels.clone();
        let mut builder = ThroughputLp::new(ctx, &tunnels, &groups);
        for f in 0..ctx.flows.len() {
            for q in &selected.scenarios {
                builder.add_survival_row(f, &q.cut);
            }
        }
        let (allocation, admitted) = builder.solve();
        Plan { tunnels, allocation, admitted }
    }
}

// --------------------------------------------------------------- ARROW

/// ARROW (Zhong et al. \[41\]): TeaVaR-style planning, but failure
/// scenarios may count on optical restoration rebuilding a fraction of
/// the lost wavelengths after a fixed latency. Flows that rely on
/// restored capacity suffer the restoration latency as outage.
#[derive(Debug, Clone)]
pub struct ArrowScheme {
    /// Availability bound β.
    pub beta: f64,
    /// Restoration latency in seconds (paper: 8 s).
    pub latency_s: f64,
    /// Fraction of killed tunnel bandwidth restoration recovers.
    pub restore_fraction: f64,
    /// Static probabilities.
    pub estimator: ProbabilityEstimator,
}

impl ArrowScheme {
    /// Builds ARROW with the paper's 8 s restoration latency and a 70 %
    /// wavelength-restoration capability.
    pub fn new(model: &FailureModel, beta: f64) -> Self {
        Self {
            beta,
            latency_s: 8.0,
            restore_fraction: 0.7,
            estimator: ProbabilityEstimator::static_model(model),
        }
    }
}

impl TeScheme for ArrowScheme {
    fn name(&self) -> String {
        "ARROW".into()
    }

    fn reaction(&self) -> ReactionModel {
        ReactionModel::OpticalRestoration {
            latency_s: self.latency_s,
            restore_fraction: self.restore_fraction,
        }
    }

    fn plan(&self, ctx: &TeContext<'_>, state: &DegradationState, probs_override: Option<&[f64]>) -> Plan {
        let probs = probs_override
            .map(<[f64]>::to_vec)
            .unwrap_or_else(|| self.estimator.probabilities(state));
        // TeaVaR-like selection.
        let teavar = TeaVarScheme { beta: self.beta, estimator: self.estimator.clone() };
        let selected = teavar.selected_scenarios(&probs, self.beta);
        let groups = CapacityGroups::build(ctx.net);
        let tunnels = ctx.base_tunnels.clone();
        let mut builder = ThroughputLp::new(ctx, &tunnels, &groups);
        for f in 0..ctx.flows.len() {
            for q in &selected.scenarios {
                if q.is_no_failure() {
                    builder.add_survival_row(f, &q.cut);
                } else {
                    // Survivors plus restored fraction of killed tunnels
                    // must cover b_f:
                    //   Σ_surv a + ρ Σ_killed a ≥ b_f.
                    let flow_id = ctx.flows[f].id;
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    for &t in tunnels.of_flow(flow_id) {
                        let coeff = if tunnels.tunnel(t).survives(ctx.net, &q.cut) {
                            1.0
                        } else {
                            self.restore_fraction
                        };
                        terms.push((builder.a_vars[t.index()], coeff));
                    }
                    terms.push((builder.b_vars[f], -1.0));
                    builder.lp.add_constraint(terms, Sense::Ge, 0.0);
                }
            }
        }
        let (allocation, admitted) = builder.solve();
        Plan { tunnels, allocation, admitted }
    }
}

// ------------------------------------------------------------- Flexile

/// Flexile (Jiang et al. \[21\]): the per-flow β-loss MIP (the same
/// optimization PreTE builds on), but with static probabilities, no
/// tunnel updates, and *reactive* centralized recomputation on failure.
#[derive(Debug, Clone)]
pub struct FlexileScheme {
    /// Per-flow availability target β.
    pub beta: f64,
    /// Convergence time charged per affecting failure (seconds).
    pub convergence_s: f64,
    /// Static probabilities.
    pub estimator: ProbabilityEstimator,
    /// Inner solver.
    pub method: SolveMethod,
}

impl FlexileScheme {
    /// Builds Flexile with a 120 s convergence time (§2.1: reactive
    /// schemes "fail to satisfy bandwidth requirements … for minutes").
    pub fn new(model: &FailureModel, beta: f64) -> Self {
        Self {
            beta,
            convergence_s: 120.0,
            estimator: ProbabilityEstimator::static_model(model),
            method: SolveMethod::Heuristic,
        }
    }
}

impl TeScheme for FlexileScheme {
    fn name(&self) -> String {
        "Flexile".into()
    }

    fn reaction(&self) -> ReactionModel {
        ReactionModel::CentralizedRecompute { convergence_s: self.convergence_s }
    }

    fn plan(&self, ctx: &TeContext<'_>, state: &DegradationState, probs_override: Option<&[f64]>) -> Plan {
        let probs = probs_override
            .map(<[f64]>::to_vec)
            .unwrap_or_else(|| self.estimator.probabilities(state));
        let scenarios = ScenarioSet::enumerate(&probs, 1, 0.0);
        let tunnels = ctx.base_tunnels.clone();
        let problem = TeProblem::new(ctx.net, ctx.flows, &tunnels, &scenarios);
        let sol = TeSolver::new(&problem)
            .beta(self.beta)
            .method(self.method)
            .solve()
            .expect("unbudgeted solve");
        let admitted = ctx.flows.iter().map(|f| f.demand_gbps).collect();
        Plan { tunnels, allocation: sol.allocation, admitted }
    }
}

// --------------------------------------------------------------- PreTE

/// PreTE: Eqn 1 dynamic probabilities + Algorithm 1 reactive tunnels +
/// the (2)–(8) optimization.
#[derive(Debug, Clone)]
pub struct PreTeScheme {
    /// Per-flow availability target β.
    pub beta: f64,
    /// The dynamic probability estimator (NN / statistic / oracle
    /// conditionals plugged in here — Figure 15's knob).
    pub estimator: ProbabilityEstimator,
    /// Algorithm 1 configuration (`ratio = 0` → PreTE-naive,
    /// Figure 16's knob).
    pub tunnel_update: TunnelUpdateConfig,
    /// Inner solver.
    pub method: SolveMethod,
    /// Display name.
    pub label: String,
}

impl PreTeScheme {
    /// The standard PreTE configuration.
    pub fn new(beta: f64, estimator: ProbabilityEstimator) -> Self {
        Self {
            beta,
            estimator,
            tunnel_update: TunnelUpdateConfig::default(),
            method: SolveMethod::Heuristic,
            label: "PreTE".into(),
        }
    }

    /// PreTE-naive: dynamic probabilities but no tunnel updates
    /// (Figure 16's `PreTE-naive`).
    pub fn naive(beta: f64, estimator: ProbabilityEstimator) -> Self {
        Self {
            beta,
            estimator,
            tunnel_update: TunnelUpdateConfig { ratio: 0.0, ..Default::default() },
            method: SolveMethod::Heuristic,
            label: "PreTE-naive".into(),
        }
    }
}

impl TeScheme for PreTeScheme {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn reaction(&self) -> ReactionModel {
        ReactionModel::LocalRateAdaptation
    }

    fn state_aware(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &TeContext<'_>, state: &DegradationState, probs_override: Option<&[f64]>) -> Plan {
        let probs = probs_override
            .map(<[f64]>::to_vec)
            .unwrap_or_else(|| self.estimator.probabilities(state));
        // Reactive step (Algorithm 1) for each degraded fiber.
        let mut tunnels = ctx.base_tunnels.clone();
        for &f in &state.degraded {
            update_tunnels(ctx.net, &mut tunnels, f, self.tunnel_update);
        }
        // Proactive step: optimize over the enlarged tunnel set.
        let scenarios = ScenarioSet::enumerate(&probs, 1, 0.0);
        let problem = TeProblem::new(ctx.net, ctx.flows, &tunnels, &scenarios);
        let sol = TeSolver::new(&problem)
            .beta(self.beta)
            .method(self.method)
            .solve()
            .expect("unbudgeted solve");
        let admitted = ctx.flows.iter().map(|f| f.demand_gbps).collect();
        Plan { tunnels, allocation: sol.allocation, admitted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::TrueConditionals;
    use crate::examples::{triangle, triangle_flows};
    use prete_topology::FiberId;

    fn ctx_fixture() -> (Network, FailureModel, Vec<Flow>, TunnelSet) {
        let net = triangle();
        let model = FailureModel::new(&net, 42);
        let flows = triangle_flows();
        let tunnels = TunnelSet::initialize(&net, &flows, 2);
        (net, model, flows, tunnels)
    }

    #[test]
    fn ecmp_splits_evenly() {
        let (net, model, flows, tunnels) = ctx_fixture();
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let plan = EcmpScheme.plan(&ctx, &DegradationState::healthy(), None);
        for flow in &flows {
            let ts = plan.tunnels.of_flow(flow.id);
            for &t in ts {
                assert!(
                    (plan.allocation[t.index()] - flow.demand_gbps / ts.len() as f64).abs()
                        < 1e-9
                );
            }
        }
    }

    #[test]
    fn ecmp_overload_scales_delivery() {
        // Double the demand: ECMP oversubscribes and the delivery model
        // squeezes flows below demand.
        let (net, model, mut flows, tunnels) = ctx_fixture();
        for f in &mut flows {
            f.demand_gbps = 30.0;
        }
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let plan = EcmpScheme.plan(&ctx, &DegradationState::healthy(), None);
        let groups = CapacityGroups::build(&net);
        let d0 = plan.delivered(&net, &groups, 0, &flows, &[]);
        assert!(d0 < 30.0 - 1e-6, "delivered {d0}");
    }

    #[test]
    fn ffc1_survives_any_single_cut() {
        let (net, model, flows, tunnels) = ctx_fixture();
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let plan = FfcScheme::one().plan(&ctx, &DegradationState::healthy(), None);
        let groups = CapacityGroups::build(&net);
        for f in 0..flows.len() {
            assert!(plan.admitted[f] > 0.0, "flow {f} admitted nothing");
            for fiber in net.fibers() {
                let d = plan.delivered(&net, &groups, f, &flows, &[fiber.id]);
                assert!(
                    d + 1e-6 >= plan.admitted[f],
                    "flow {f} loses under cut of {:?}: {d} < {}",
                    fiber.id,
                    plan.admitted[f]
                );
            }
        }
    }

    #[test]
    fn ffc2_more_conservative_than_ffc1() {
        let (net, model, flows, tunnels) = ctx_fixture();
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let p1 = FfcScheme::one().plan(&ctx, &DegradationState::healthy(), None);
        let p2 = FfcScheme::two().plan(&ctx, &DegradationState::healthy(), None);
        let t1: f64 = p1.admitted.iter().sum();
        let t2: f64 = p2.admitted.iter().sum();
        assert!(t2 <= t1 + 1e-6, "FFC-2 {t2} > FFC-1 {t1}");
        // In the triangle, any 2 cuts disconnect a flow entirely → FFC-2
        // admits nothing.
        assert!(t2 < 1e-6, "triangle cannot guarantee 2-cut survival, got {t2}");
    }

    #[test]
    fn teavar_reproduces_figure2_example() {
        // β = 99 %, p = (0.005, 0.009, 0.001), flows s1→s2 (1 tunnel
        // pinned by capacity) and s1→s3: total admitted = 10 units.
        let (net, model, flows, tunnels) = ctx_fixture();
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let mut scheme = TeaVarScheme::new(&model, 0.99);
        // Pin the example's probabilities (the FailureModel samples its
        // own): enumerate with explicit override.
        let plan = scheme.plan(
            &ctx,
            &DegradationState::healthy(),
            Some(&crate::examples::TRIANGLE_PROBS),
        );
        let total: f64 = plan.admitted.iter().sum();
        assert!(
            (total - 10.0).abs() < 1e-4,
            "TeaVaR should admit 10 units (Figure 2(b)), got {total}"
        );
        // Oracle knowledge that s1s2 will NOT fail admits 20 (Fig 3(b)).
        scheme.beta = 0.99;
        let oracle_probs = [0.0, 0.009, 0.001];
        let plan2 = scheme.plan(&ctx, &DegradationState::healthy(), Some(&oracle_probs));
        let total2: f64 = plan2.admitted.iter().sum();
        assert!(
            (total2 - 20.0).abs() < 1e-4,
            "oracular TE should admit 20 units (Figure 3(b)), got {total2}"
        );
    }

    #[test]
    fn arrow_admits_at_least_teavar() {
        // Restoration gives ARROW extra effective capacity in failure
        // scenarios → admitted ≥ TeaVaR's.
        let (net, model, flows, tunnels) = ctx_fixture();
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let probs = [0.02, 0.02, 0.02];
        let tv = TeaVarScheme::new(&model, 0.995)
            .plan(&ctx, &DegradationState::healthy(), Some(&probs));
        let ar = ArrowScheme::new(&model, 0.995)
            .plan(&ctx, &DegradationState::healthy(), Some(&probs));
        let t_tv: f64 = tv.admitted.iter().sum();
        let t_ar: f64 = ar.admitted.iter().sum();
        assert!(t_ar >= t_tv - 1e-6, "ARROW {t_ar} < TeaVaR {t_tv}");
    }

    #[test]
    fn prete_reacts_to_degradation_with_new_tunnels() {
        let (net, model, flows, tunnels) = ctx_fixture();
        // Base tunnels: only the direct one per flow, so degradation
        // must produce reactive tunnels.
        let thin = TunnelSet::initialize(&net, &flows, 1);
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &thin };
        let tc = TrueConditionals::ground_truth(&net, &model, 50, 1);
        let scheme = PreTeScheme::new(0.99, ProbabilityEstimator::prete(&model, &tc));
        assert!(scheme.state_aware());
        let healthy = scheme.plan(&ctx, &DegradationState::healthy(), None);
        let degraded = scheme.plan(&ctx, &DegradationState::single(FiberId(0)), None);
        assert!(degraded.tunnels.len() > healthy.tunnels.len());
        let _ = tunnels;
    }

    #[test]
    fn prete_naive_adds_no_tunnels() {
        let (net, model, flows, _) = ctx_fixture();
        let thin = TunnelSet::initialize(&net, &flows, 1);
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &thin };
        let tc = TrueConditionals::ground_truth(&net, &model, 50, 1);
        let scheme = PreTeScheme::naive(0.99, ProbabilityEstimator::prete(&model, &tc));
        let degraded = scheme.plan(&ctx, &DegradationState::single(FiberId(0)), None);
        assert_eq!(degraded.tunnels.len(), thin.len());
        assert_eq!(scheme.name(), "PreTE-naive");
    }

    #[test]
    fn flexile_plans_within_capacity() {
        let (net, model, flows, tunnels) = ctx_fixture();
        let ctx = TeContext { net: &net, model: &model, flows: &flows, base_tunnels: &tunnels };
        let plan = FlexileScheme::new(&model, 0.99).plan(&ctx, &DegradationState::healthy(), None);
        let groups = CapacityGroups::build(&net);
        let mut load = vec![0.0; groups.len()];
        for t in plan.tunnels.tunnels() {
            for g in groups.groups_of_path(&t.path.links) {
                load[g] += plan.allocation[t.id.index()];
            }
        }
        for (g, &l) in load.iter().enumerate() {
            assert!(l <= groups.capacity(g) + 1e-6, "group {g}: {l}");
        }
    }
}
