//! Algorithm 1: TE tunnel updates for a degradation event (§4.2).
//!
//! When fiber `e` degrades, the controller deletes `e` from the WAN
//! graph and, for every flow with `Λ > 0` tunnels traversing `e`,
//! establishes `⌈ratio · Λ⌉` new tunnels in the pruned graph. The new
//! tunnels are therefore disjoint from the degraded fiber by
//! construction; `ratio` is the §6.4 sensitivity knob (Figure 16 — the
//! paper recommends ratio = 1 as the runtime/availability sweet spot,
//! and `ratio = 0` is "PreTE-naive").

use prete_topology::paths::k_shortest_paths_avoiding;
use prete_topology::{FiberId, Network, TunnelId, TunnelSet};
use std::collections::HashSet;

/// Configuration for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunnelUpdateConfig {
    /// New tunnels per affected tunnel (`Λ → ⌈ratio · Λ⌉`). The paper
    /// sweeps 0–5; default 1.
    pub ratio: f64,
    /// Hard cap on new tunnels per flow (router table guard).
    pub max_new_per_flow: usize,
}

impl Default for TunnelUpdateConfig {
    fn default() -> Self {
        Self { ratio: 1.0, max_new_per_flow: 8 }
    }
}

/// Runs Algorithm 1 for a degradation on `degraded`: establishes new
/// tunnels (avoiding the degraded fiber) for every affected flow and
/// appends them to `tunnels` as reactive tunnels. Returns the new
/// tunnel IDs (`Y^s`).
pub fn update_tunnels(
    net: &Network,
    tunnels: &mut TunnelSet,
    degraded: FiberId,
    cfg: TunnelUpdateConfig,
) -> Vec<TunnelId> {
    assert!(cfg.ratio >= 0.0);
    let banned: HashSet<FiberId> = [degraded].into_iter().collect();
    let mut created = Vec::new();
    if cfg.ratio == 0.0 {
        return created; // PreTE-naive: no reactive tunnels.
    }
    // Step 2: for each flow, count affected tunnels (Λ) and establish
    // replacements in G' = G \ {degraded}.
    let flows: Vec<_> = tunnels
        .tunnels()
        .iter()
        .map(|t| (t.flow, tunnels.tunnel(t.id).path.src(), tunnels.tunnel(t.id).path.dst()))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for (flow, src, dst) in flows {
        let lambda = tunnels.affected_count(net, flow, degraded);
        if lambda == 0 {
            continue;
        }
        let want = ((cfg.ratio * lambda as f64).ceil() as usize).min(cfg.max_new_per_flow);
        // Candidate pool: a few extra so duplicates of existing tunnels
        // can be skipped.
        let candidates = k_shortest_paths_avoiding(net, src, dst, want + lambda + 2, &banned);
        // Distinctness is by site route: a parallel wavelength of an
        // existing tunnel adds no protection.
        let existing: Vec<Vec<_>> = tunnels
            .of_flow(flow)
            .iter()
            .map(|&t| tunnels.tunnel(t).path.sites.clone())
            .collect();
        let mut added = 0usize;
        for path in candidates {
            if added >= want {
                break;
            }
            if existing.contains(&path.sites) {
                continue;
            }
            created.push(tunnels.add_reactive(flow, path));
            added += 1;
        }
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{triangle, triangle_flows};
    use prete_topology::{topologies, FlowId, TunnelSet};

    #[test]
    fn creates_tunnels_avoiding_degraded_fiber() {
        let net = triangle();
        let flows = triangle_flows();
        // Start each flow with only its direct (1-hop) tunnel so the
        // degradation forces new paths.
        let mut tunnels = TunnelSet::initialize(&net, &flows, 1);
        let before = tunnels.len();
        // Degrade fiber 0 = s1—s2: flow s1→s2's only tunnel crosses it.
        let created = update_tunnels(&net, &mut tunnels, FiberId(0), TunnelUpdateConfig::default());
        assert!(!created.is_empty());
        assert!(tunnels.len() > before);
        for id in created {
            assert!(!tunnels.tunnel(id).uses_fiber(&net, FiberId(0)));
        }
    }

    #[test]
    fn ratio_zero_is_prete_naive() {
        let net = triangle();
        let flows = triangle_flows();
        let mut tunnels = TunnelSet::initialize(&net, &flows, 2);
        let cfg = TunnelUpdateConfig { ratio: 0.0, ..Default::default() };
        let created = update_tunnels(&net, &mut tunnels, FiberId(0), cfg);
        assert!(created.is_empty());
    }

    #[test]
    fn unaffected_flows_get_nothing() {
        let net = triangle();
        let flows = triangle_flows();
        let mut tunnels = TunnelSet::initialize(&net, &flows, 1);
        // Degrade fiber 2 = s2—s3: neither direct tunnel (s1s2, s1s3)
        // crosses it with 1 tunnel per flow.
        let created = update_tunnels(&net, &mut tunnels, FiberId(2), TunnelUpdateConfig::default());
        assert!(created.is_empty());
    }

    #[test]
    fn ratio_scales_tunnel_count() {
        let net = topologies::b4();
        let flows = topologies::flows_for(&net, 0.2, 1);
        let base = TunnelSet::initialize(&net, &flows, 4);
        let mut counts = Vec::new();
        for ratio in [0.5, 1.0, 2.0] {
            let mut ts = base.clone();
            let cfg = TunnelUpdateConfig { ratio, max_new_per_flow: 32 };
            let created = update_tunnels(&net, &mut ts, FiberId(0), cfg);
            counts.push(created.len());
        }
        assert!(counts[0] <= counts[1] && counts[1] <= counts[2]);
        assert!(counts[2] > 0);
    }

    #[test]
    fn duplicates_of_existing_tunnels_skipped() {
        let net = triangle();
        let flows = triangle_flows();
        // Initialize with 2 tunnels per flow (direct + detour).
        let mut tunnels = TunnelSet::initialize(&net, &flows, 2);
        let created = update_tunnels(&net, &mut tunnels, FiberId(0), TunnelUpdateConfig::default());
        // Triangle has only 2 simple paths per pair; both already exist
        // → nothing new can be created.
        assert!(created.is_empty());
    }

    #[test]
    fn clear_reactive_restores_original_state() {
        let net = triangle();
        let flows = triangle_flows();
        let mut tunnels = TunnelSet::initialize(&net, &flows, 1);
        let before = tunnels.of_flow(FlowId(0)).len();
        update_tunnels(&net, &mut tunnels, FiberId(0), TunnelUpdateConfig::default());
        tunnels.clear_reactive();
        assert_eq!(tunnels.of_flow(FlowId(0)).len(), before);
    }
}
