//! Failure-probability calibration (§4.1, Eqn 1).
//!
//! Every scheme consumes a per-fiber failure probability vector for the
//! next TE period. The schemes differ in *how they compute it*:
//!
//! * static (TeaVaR, FFC, ARROW, Flexile): `p_n = p_i` regardless of
//!   the optical state;
//! * PreTE (Eqn 1): `p_n = p̂(degradation)` when fiber `n` is degraded
//!   (the NN's estimate), `p_n = (1 − α) p_i` otherwise (Theorem 4.1);
//! * oracle: `p_n ∈ {0, 1}` for degraded fibers (perfect foresight),
//!   `(1 − α) p_i` otherwise — unpredictable cuts stay unpredictable,
//!   which is why even the oracle curve in Figure 15 is not at 100 %.
//!
//! [`TrueConditionals`] estimates the per-fiber mean conditional cut
//! probability `E[P(cut | degradation, fiber)]` by Monte-Carlo over the
//! feature distribution — used both as the evaluation ground truth and
//! to summarize what a trained predictor would answer for a fiber.

use crate::scenario::DegradationState;
use prete_nn::Predictor;
use prete_optical::{FailureModel, ALPHA_PREDICTABLE};
use prete_topology::{FiberId, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-fiber mean conditional cut probability given a degradation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrueConditionals {
    /// `per_fiber[n] = E[P(cut | degradation on fiber n)]`.
    pub per_fiber: Vec<f64>,
}

impl TrueConditionals {
    /// Monte-Carlo estimate of the ground-truth conditionals:
    /// `samples` feature draws per fiber, averaged through
    /// [`FailureModel::true_cut_probability`].
    pub fn ground_truth(net: &Network, model: &FailureModel, samples: usize, seed: u64) -> Self {
        Self::estimate(net, model, samples, seed, |feats| model.true_cut_probability(feats))
    }

    /// Same Monte-Carlo, but through a trained predictor — what the
    /// TE controller would believe about each fiber.
    pub fn from_predictor(
        net: &Network,
        model: &FailureModel,
        predictor: &dyn Predictor,
        samples: usize,
        seed: u64,
    ) -> Self {
        Self::estimate(net, model, samples, seed, |feats| {
            // Predictors take full events; wrap the features.
            let event = prete_optical::DegradationEvent {
                fiber: FiberId(feats.fiber_id),
                start_s: 0,
                duration_s: 10,
                features: *feats,
                led_to_cut: false,
                cut_delay_s: None,
            };
            predictor.predict_proba(&event)
        })
    }

    fn estimate(
        net: &Network,
        model: &FailureModel,
        samples: usize,
        seed: u64,
        mut f: impl FnMut(&prete_optical::DegradationFeatures) -> f64,
    ) -> Self {
        assert!(samples >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let per_fiber = net
            .fibers()
            .iter()
            .map(|fiber| {
                let mut acc = 0.0;
                for i in 0..samples {
                    let hour = (i % 24) as u8;
                    let feats = model.sample_features(net, fiber.id, hour, &mut rng);
                    acc += f(&feats);
                }
                acc / samples as f64
            })
            .collect();
        TrueConditionals { per_fiber }
    }
}

/// How a scheme maps the optical state to per-fiber probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Mode {
    /// Constant `p_i` (the TeaVaR worldview).
    Static,
    /// Eqn 1: conditional when degraded, `(1 − α) p_i` otherwise.
    Dynamic {
        conditional: Vec<f64>,
        alpha: f64,
    },
}

/// A calibrated probability estimator (one per scheme instance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityEstimator {
    static_p: Vec<f64>,
    mode: Mode,
}

impl ProbabilityEstimator {
    /// The static estimator: `p_n = p_i` for every state.
    pub fn static_model(model: &FailureModel) -> Self {
        Self {
            static_p: model.profiles().iter().map(|p| p.p_cut).collect(),
            mode: Mode::Static,
        }
    }

    /// The Eqn 1 dynamic estimator with the given per-fiber
    /// conditionals (ground truth, a predictor's beliefs, or oracle
    /// 0/1 values) and predictable fraction `alpha`.
    pub fn dynamic(model: &FailureModel, conditional: &TrueConditionals, alpha: f64) -> Self {
        assert_eq!(conditional.per_fiber.len(), model.profiles().len());
        assert!((0.0..=1.0).contains(&alpha));
        Self {
            static_p: model.profiles().iter().map(|p| p.p_cut).collect(),
            mode: Mode::Dynamic { conditional: conditional.per_fiber.clone(), alpha },
        }
    }

    /// The paper's PreTE configuration: dynamic with `α = 25 %`.
    pub fn prete(model: &FailureModel, conditional: &TrueConditionals) -> Self {
        Self::dynamic(model, conditional, ALPHA_PREDICTABLE)
    }

    /// Eqn 1: the per-fiber probability vector for a degradation state.
    pub fn probabilities(&self, state: &DegradationState) -> Vec<f64> {
        match &self.mode {
            Mode::Static => self.static_p.clone(),
            Mode::Dynamic { conditional, alpha } => self
                .static_p
                .iter()
                .enumerate()
                .map(|(n, &p_i)| {
                    if state.is_degraded(FiberId(n)) {
                        conditional[n]
                    } else {
                        (1.0 - alpha) * p_i
                    }
                })
                .collect(),
        }
    }

    /// The static `p_i` vector (for reporting).
    pub fn static_probabilities(&self) -> &[f64] {
        &self.static_p
    }

    /// Whether the estimator reacts to degradations.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.mode, Mode::Dynamic { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prete_topology::topologies;

    #[test]
    fn ground_truth_conditionals_near_40_percent() {
        let net = topologies::b4();
        let model = FailureModel::new(&net, 42);
        let tc = TrueConditionals::ground_truth(&net, &model, 400, 1);
        assert_eq!(tc.per_fiber.len(), net.num_fibers());
        let mean: f64 = tc.per_fiber.iter().sum::<f64>() / tc.per_fiber.len() as f64;
        assert!((0.25..=0.55).contains(&mean), "mean conditional {mean}");
        // Per-fiber spread driven by the fiber bias.
        let min = tc.per_fiber.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tc.per_fiber.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "spread {min}..{max}");
    }

    #[test]
    fn static_estimator_ignores_state() {
        let net = topologies::b4();
        let model = FailureModel::new(&net, 42);
        let est = ProbabilityEstimator::static_model(&model);
        assert!(!est.is_dynamic());
        let healthy = est.probabilities(&DegradationState::healthy());
        let degraded = est.probabilities(&DegradationState::single(FiberId(0)));
        assert_eq!(healthy, degraded);
        assert_eq!(healthy[3], model.p_cut(FiberId(3)));
    }

    #[test]
    fn dynamic_estimator_implements_eqn1() {
        let net = topologies::b4();
        let model = FailureModel::new(&net, 42);
        let tc = TrueConditionals::ground_truth(&net, &model, 100, 2);
        let est = ProbabilityEstimator::prete(&model, &tc);
        assert!(est.is_dynamic());
        let state = DegradationState::single(FiberId(5));
        let p = est.probabilities(&state);
        // Degraded fiber: the (much larger) conditional.
        assert_eq!(p[5], tc.per_fiber[5]);
        assert!(p[5] > 10.0 * model.p_cut(FiberId(5)));
        // Others: (1 − α) p_i — lower than static (Theorem 4.1).
        assert!((p[0] - 0.75 * model.p_cut(FiberId(0))).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_degrades_to_static_off_signal() {
        // §4.1.2: with α = 0, the no-signal probability equals p_i.
        let net = topologies::b4();
        let model = FailureModel::new(&net, 42);
        let tc = TrueConditionals::ground_truth(&net, &model, 50, 3);
        let est = ProbabilityEstimator::dynamic(&model, &tc, 0.0);
        let p = est.probabilities(&DegradationState::healthy());
        for (n, &pn) in p.iter().enumerate() {
            assert!((pn - model.p_cut(FiberId(n))).abs() < 1e-12);
        }
    }

    #[test]
    fn alpha_one_zeroes_no_signal_probability() {
        let net = topologies::b4();
        let model = FailureModel::new(&net, 42);
        let tc = TrueConditionals::ground_truth(&net, &model, 50, 4);
        let est = ProbabilityEstimator::dynamic(&model, &tc, 1.0);
        let p = est.probabilities(&DegradationState::healthy());
        assert!(p.iter().all(|&x| x == 0.0));
    }
}
