//! The paper's illustrative networks, reusable across tests, examples
//! and benches.

use prete_topology::{Flow, FlowId, Network, NetworkBuilder, SiteId};

/// The Figure 2(a) network: three sites s1/s2/s3, three links (s1s2,
/// s1s3, s2s3) of 10 capacity units each, one fiber per link.
pub fn triangle() -> Network {
    let mut b = NetworkBuilder::new("fig2-triangle");
    let s1 = b.site("s1", 0);
    let s2 = b.site("s2", 0);
    let s3 = b.site("s3", 0);
    let f12 = b.fiber(s1, s2, 100.0, 0);
    let f13 = b.fiber(s1, s3, 100.0, 0);
    let f23 = b.fiber(s2, s3, 100.0, 0);
    b.link_on(f12, 10.0);
    b.link_on(f13, 10.0);
    b.link_on(f23, 10.0);
    b.build()
}

/// The Figure 2 flows: s1→s2 and s1→s3, 10 units of demand each.
pub fn triangle_flows() -> Vec<Flow> {
    vec![
        Flow { id: FlowId(0), src: SiteId(0), dst: SiteId(1), demand_gbps: 10.0 },
        Flow { id: FlowId(1), src: SiteId(0), dst: SiteId(2), demand_gbps: 10.0 },
    ]
}

/// The Figure 2 per-fiber failure probabilities (s1s2, s1s3, s2s3).
pub const TRIANGLE_PROBS: [f64; 3] = [0.005, 0.009, 0.001];

/// The §7 production case (Figure 18(a)): four sites, five IP links of
/// 1000 Gbps each (s1s2, s1s3, s2s3, s1s4, s4s3).
pub fn production_four_site() -> Network {
    let mut b = NetworkBuilder::new("fig18-production");
    let s1 = b.site("s1", 0);
    let s2 = b.site("s2", 0);
    let s3 = b.site("s3", 0);
    let s4 = b.site("s4", 0);
    for (a, z) in [(s1, s2), (s1, s3), (s2, s3), (s1, s4), (s4, s3)] {
        let f = b.fiber(a, z, 300.0, 0);
        b.link_on(f, 1000.0);
    }
    b.build()
}

/// The §7 traffic: tunnels s1→s2, s1→s3 and s4→s3 carrying 700, 600
/// and 300 Gbps respectively.
pub fn production_flows() -> Vec<Flow> {
    vec![
        Flow { id: FlowId(0), src: SiteId(0), dst: SiteId(1), demand_gbps: 700.0 },
        Flow { id: FlowId(1), src: SiteId(0), dst: SiteId(2), demand_gbps: 600.0 },
        Flow { id: FlowId(2), src: SiteId(3), dst: SiteId(2), demand_gbps: 300.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_matches_figure2a() {
        let n = triangle();
        assert_eq!(n.num_sites(), 3);
        assert_eq!(n.num_links(), 3);
        assert!(n.links().iter().all(|l| l.capacity_gbps == 10.0));
    }

    #[test]
    fn production_matches_figure18a() {
        let n = production_four_site();
        assert_eq!(n.num_sites(), 4);
        assert_eq!(n.num_links(), 5);
        assert!(n.links().iter().all(|l| l.capacity_gbps == 1000.0));
    }
}
