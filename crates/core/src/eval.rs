//! Availability evaluation (Figures 13, 15, 16, 17; Table 4).
//!
//! The evaluator replays the probabilistic world against each scheme's
//! plans and charges outage time per the scheme's reaction model:
//!
//! 1. **Degradation states.** The world is in the all-healthy state
//!    with probability `Π_n (1 − p_d,n)`, or has (approximately) one
//!    degraded fiber. We evaluate the healthy state exactly plus the
//!    `top_k` most-likely single-degradation states, scaling their
//!    contribution up to the full single-degradation mass (documented
//!    approximation; the tail states have the smallest `p_d` and
//!    near-identical per-state behaviour).
//! 2. **True failure probabilities.** Regardless of what a scheme
//!    *believes*, failures are drawn from the ground truth: a degraded
//!    fiber cuts with its mean conditional probability (≈ 40 %), others
//!    with `(1 − α) p_i` (Theorem 4.1). Static schemes therefore
//!    underestimate failures exactly when it hurts (degradations) and
//!    overestimate otherwise — the paper's core observation.
//! 3. **Outage accounting.** Per scenario, the flow's outage fraction
//!    of the 15-minute epoch depends on the reaction model: persistent
//!    loss = full epoch; Flexile's centralized recompute = convergence
//!    time (or full epoch if even the recomputed optimum loses
//!    traffic); ARROW = 8 s when the plan leans on restoration;
//!    proactive local rate adaptation = no outage when residual
//!    capacity suffices.
//!
//! The oracle variant of PreTE is evaluated by splitting each degraded
//! state into will-cut / won't-cut outcomes with ground-truth weights
//! and handing the scheme the corresponding certainty vector.

use crate::capacity::CapacityGroups;
use crate::estimator::TrueConditionals;
use crate::scenario::{DegradationState, ScenarioSet};
use crate::schemes::{Plan, ReactionModel, TeContext, TeScheme};
use prete_lp::{solve, LinearProgram, Sense, SolveStatus, VarId};
use prete_optical::{FailureModel, ALPHA_PREDICTABLE};
use prete_topology::{FiberId, Flow, Network, TunnelSet};
use serde::Serialize;

/// Evaluator configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Number of single-degradation states to evaluate explicitly
    /// (most-probable first); the rest are represented by mass scaling.
    pub top_k_degraded: usize,
    /// Epoch length in seconds (15 min).
    pub epoch_s: f64,
    /// Relative loss below which a flow counts as unaffected.
    pub loss_tol: f64,
    /// SLA outage threshold in seconds: a loss burst at least this long
    /// marks the epoch unavailable for the flow. Millisecond-scale
    /// local rate adaptation stays below it; ARROW's 8 s restoration
    /// and Flexile's convergence exceed it (the paper's Table 9
    /// reaction-speed taxonomy: "ms" vs "Seconds").
    pub sla_outage_threshold_s: f64,
    /// The predictable-cut fraction `α` of the world under evaluation
    /// (Theorem 4.1's off-signal discount); defaults to the paper's
    /// 25 %, overridden by the Figure 20(b) α sweep.
    pub alpha: f64,
    /// Whether to split degraded states into oracle outcome branches
    /// (needed only when evaluating oracle-grade estimators; costs 2×
    /// plans per degraded state). When false, degraded states are
    /// planned once with the scheme's own beliefs.
    pub oracle_outcome_split: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            top_k_degraded: 8,
            epoch_s: 900.0,
            loss_tol: 1e-6,
            sla_outage_threshold_s: 1.0,
            alpha: ALPHA_PREDICTABLE,
            oracle_outcome_split: false,
        }
    }
}

/// Per-scheme availability results.
#[derive(Debug, Clone, Serialize)]
pub struct AvailabilityReport {
    /// Scheme label.
    pub scheme: String,
    /// Availability per flow.
    pub per_flow: Vec<f64>,
    /// Demand-weighted mean availability.
    pub mean: f64,
    /// Worst-flow availability.
    pub min: f64,
    /// Total admitted bandwidth in the healthy state (Gbps) — the
    /// throughput side of the trade-off.
    pub admitted_gbps: f64,
}

impl AvailabilityReport {
    /// Mean unavailability in "nines": `-log10(1 - mean)`.
    pub fn nines(&self) -> f64 {
        -(1.0 - self.mean).max(1e-12).log10()
    }
}

/// The availability evaluator for one (topology, traffic, model)
/// configuration.
pub struct AvailabilityEvaluator<'a> {
    /// Network under test.
    pub net: &'a Network,
    /// Failure model (rates + ground truth).
    pub model: &'a FailureModel,
    /// Flows with scaled demands.
    pub flows: Vec<Flow>,
    /// Pre-established tunnels.
    pub base_tunnels: &'a TunnelSet,
    /// Ground-truth conditional cut probabilities.
    pub truth: &'a TrueConditionals,
    /// Configuration.
    pub cfg: EvalConfig,
    groups: CapacityGroups,
}

impl<'a> AvailabilityEvaluator<'a> {
    /// Builds an evaluator.
    pub fn new(
        net: &'a Network,
        model: &'a FailureModel,
        flows: Vec<Flow>,
        base_tunnels: &'a TunnelSet,
        truth: &'a TrueConditionals,
        cfg: EvalConfig,
    ) -> Self {
        let groups = CapacityGroups::build(net);
        Self { net, model, flows, base_tunnels, truth, cfg, groups }
    }

    /// The true per-fiber cut probabilities for a degradation state,
    /// with optional oracle outcome pinning of the degraded fiber.
    fn true_probs(&self, state: &DegradationState, outcome: Option<bool>) -> Vec<f64> {
        self.model
            .profiles()
            .iter()
            .enumerate()
            .map(|(n, p)| {
                if state.is_degraded(FiberId(n)) {
                    match outcome {
                        Some(true) => 1.0,
                        Some(false) => 0.0,
                        None => self.truth.per_fiber[n],
                    }
                } else {
                    (1.0 - self.cfg.alpha) * p.p_cut
                }
            })
            .collect()
    }

    /// Evaluates one scheme, returning per-flow availability.
    pub fn evaluate(&self, scheme: &dyn TeScheme) -> AvailabilityReport {
        let ctx = TeContext {
            net: self.net,
            model: self.model,
            flows: &self.flows,
            base_tunnels: self.base_tunnels,
        };
        let n_flows = self.flows.len();
        let mut unavail = vec![0.0f64; n_flows];
        let mut mass_seen = 0.0f64;

        // --- Healthy state.
        let p_d: Vec<f64> = self.model.profiles().iter().map(|p| p.p_degradation).collect();
        let p_healthy: f64 = p_d.iter().map(|p| 1.0 - p).product();
        let healthy_plan = scheme.plan(&ctx, &DegradationState::healthy(), None);
        let admitted_gbps: f64 = healthy_plan.admitted.iter().sum();
        let healthy_truth = self.true_probs(&DegradationState::healthy(), None);
        self.accumulate(
            scheme,
            &healthy_plan,
            &healthy_truth,
            p_healthy,
            &mut unavail,
        );
        mass_seen += p_healthy;

        // --- Degraded states: top-k by degradation probability, scaled
        // to the full single-degradation mass.
        let mut order: Vec<usize> = (0..p_d.len()).collect();
        order.sort_by(|&a, &b| p_d[b].partial_cmp(&p_d[a]).expect("finite").then(a.cmp(&b)));
        let single_mass: f64 = (0..p_d.len())
            .map(|n| p_d[n] / (1.0 - p_d[n]) * p_healthy)
            .sum();
        let covered: f64 = order
            .iter()
            .take(self.cfg.top_k_degraded)
            .map(|&n| p_d[n] / (1.0 - p_d[n]) * p_healthy)
            .sum();
        let scale = if covered > 0.0 { single_mass / covered } else { 1.0 };
        for &n in order.iter().take(self.cfg.top_k_degraded) {
            let state = DegradationState::single(FiberId(n));
            let p_state = p_d[n] / (1.0 - p_d[n]) * p_healthy * scale;
            if p_state <= 0.0 {
                continue;
            }
            if self.cfg.oracle_outcome_split {
                // Oracle branch: the scheme is told the exact outcome.
                let p_cut = self.truth.per_fiber[n];
                for (outcome, w) in [(true, p_cut), (false, 1.0 - p_cut)] {
                    if w <= 0.0 {
                        continue;
                    }
                    let probs = self.true_probs(&state, Some(outcome));
                    let plan = if scheme.state_aware() {
                        scheme.plan(&ctx, &state, Some(&probs))
                    } else {
                        healthy_plan.clone()
                    };
                    self.accumulate(scheme, &plan, &probs, p_state * w, &mut unavail);
                }
            } else {
                let plan = if scheme.state_aware() {
                    scheme.plan(&ctx, &state, None)
                } else {
                    healthy_plan.clone()
                };
                let probs = self.true_probs(&state, None);
                self.accumulate(scheme, &plan, &probs, p_state, &mut unavail);
            }
            mass_seen += p_state;
        }

        let per_flow: Vec<f64> = unavail
            .iter()
            .map(|&u| (1.0 - u / mass_seen).clamp(0.0, 1.0))
            .collect();
        let total_demand: f64 = self.flows.iter().map(|f| f.demand_gbps).sum();
        let mean = self
            .flows
            .iter()
            .zip(&per_flow)
            .map(|(f, &a)| f.demand_gbps * a)
            .sum::<f64>()
            / total_demand;
        let min = per_flow.iter().cloned().fold(1.0, f64::min);
        AvailabilityReport { scheme: scheme.name(), per_flow, mean, min, admitted_gbps }
    }

    /// Adds `weight × p_q × outage(q)` for every failure scenario under
    /// `true_probs`.
    fn accumulate(
        &self,
        scheme: &dyn TeScheme,
        plan: &Plan,
        true_probs: &[f64],
        weight: f64,
        unavail: &mut [f64],
    ) {
        let scenarios = ScenarioSet::enumerate(true_probs, 1, 0.0);
        // Cache Flexile's recomputed optima per scenario.
        let mut recompute_cache: Vec<Option<Vec<f64>>> = vec![None; scenarios.len()];
        for (qi, q) in scenarios.scenarios.iter().enumerate() {
            if q.prob <= 0.0 {
                continue;
            }
            for (f, acc) in unavail.iter_mut().enumerate().take(self.flows.len()) {
                let u = self.outage_fraction(
                    scheme,
                    plan,
                    f,
                    &q.cut,
                    qi,
                    &mut recompute_cache,
                );
                if u > 0.0 {
                    *acc += weight * q.prob * u;
                }
            }
        }
    }

    /// Outage fraction of the epoch for flow `f` in scenario `cut`.
    fn outage_fraction(
        &self,
        scheme: &dyn TeScheme,
        plan: &Plan,
        f: usize,
        cut: &[FiberId],
        qi: usize,
        recompute_cache: &mut [Option<Vec<f64>>],
    ) -> f64 {
        let d = self.flows[f].demand_gbps;
        if d <= 0.0 {
            return 0.0;
        }
        let tol = self.cfg.loss_tol * d;
        let delivered = plan.delivered(self.net, &self.groups, f, &self.flows, cut);
        // Admission shortfall (TeaVaR/FFC/ARROW admit b_f < d_f under
        // load): traffic beyond the admitted rate is lost all epoch, so
        // charge the unserved fraction of the epoch... no: availability
        // here is binary per flow per scenario — a flow with any loss
        // beyond tolerance is "unavailable" per the SLA definition.
        let healthy_ok = delivered + tol >= d;
        match scheme.reaction() {
            ReactionModel::None | ReactionModel::LocalRateAdaptation => {
                if healthy_ok {
                    0.0
                } else {
                    1.0
                }
            }
            ReactionModel::CentralizedRecompute { convergence_s } => {
                if cut.is_empty() {
                    return if healthy_ok { 0.0 } else { 1.0 };
                }
                // Was the flow touched by the failure at all? A reactive
                // scheme loses the traffic of killed tunnels until the
                // centralized recompute converges.
                let touched = plan.killed_allocation(self.net, f, &self.flows, cut) > tol
                    || !healthy_ok;
                if !touched {
                    return 0.0;
                }
                // Post-convergence optimum for this scenario.
                let post = recompute_cache[qi]
                    .get_or_insert_with(|| self.recompute_optimum(plan, cut));
                let post_ok = post[f] + tol >= d;
                if !post_ok || convergence_s >= self.cfg.sla_outage_threshold_s {
                    1.0
                } else {
                    0.0
                }
            }
            ReactionModel::OpticalRestoration { latency_s, restore_fraction } => {
                if cut.is_empty() {
                    return if healthy_ok { 0.0 } else { 1.0 };
                }
                let restored = (delivered
                    + restore_fraction
                        * plan.killed_allocation(self.net, f, &self.flows, cut))
                .min(plan.admitted[f]);
                let restored_ok = restored + tol >= d;
                if !restored_ok {
                    1.0
                } else if !healthy_ok {
                    // The flow relies on restoration: it loses traffic
                    // for the restoration latency (8 s), which breaches
                    // the SLA burst threshold — the reason ARROW cannot
                    // reach 99.95 % in Figure 13.
                    if latency_s >= self.cfg.sla_outage_threshold_s {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    0.0
                }
            }
        }
    }

    /// Flexile's post-convergence delivery: the max-throughput LP on
    /// the failed topology (every flow capped at its demand).
    fn recompute_optimum(&self, plan: &Plan, cut: &[FiberId]) -> Vec<f64> {
        let mut lp = LinearProgram::new();
        let a_vars: Vec<VarId> = (0..plan.tunnels.len())
            .map(|_| lp.var_nonneg(0.0))
            .collect();
        let b_vars: Vec<VarId> = self
            .flows
            .iter()
            .map(|fl| lp.var_bounded(0.0, fl.demand_gbps, -1.0))
            .collect();
        let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); self.groups.len()];
        for t in plan.tunnels.tunnels() {
            if t.survives(self.net, cut) {
                for g in self.groups.groups_of_path(&t.path.links) {
                    group_terms[g].push((a_vars[t.id.index()], 1.0));
                }
            }
        }
        for (g, terms) in group_terms.into_iter().enumerate() {
            lp.add_constraint(terms, Sense::Le, self.groups.capacity(g));
        }
        for (f, fl) in self.flows.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = plan
                .tunnels
                .of_flow(fl.id)
                .iter()
                .filter(|&&t| plan.tunnels.tunnel(t).survives(self.net, cut))
                .map(|&t| (a_vars[t.index()], 1.0))
                .chain(std::iter::once((b_vars[f], -1.0)))
                .collect();
            lp.add_constraint(terms, Sense::Ge, 0.0);
        }
        let sol = solve(&lp);
        assert_eq!(sol.status, SolveStatus::Optimal);
        b_vars.iter().map(|&v| sol.value(v).max(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::ProbabilityEstimator;
    use crate::examples::{triangle, triangle_flows};
    use crate::schemes::{EcmpScheme, FfcScheme, PreTeScheme, TeaVarScheme};
    use prete_topology::TunnelSet;

    struct Fixture {
        net: Network,
        model: FailureModel,
        flows: Vec<Flow>,
        tunnels: TunnelSet,
        truth: TrueConditionals,
    }

    /// Triangle at 40 % load (4 of 10 units per flow): the regime where
    /// single-cut protection is feasible — the operating point of the
    /// paper's scale-1 evaluations. At full load the triangle cannot
    /// protect anything and every proactive scheme degenerates.
    fn fixture() -> Fixture {
        let net = triangle();
        let model = FailureModel::new(&net, 42);
        let flows: Vec<Flow> = triangle_flows()
            .into_iter()
            .map(|f| Flow { demand_gbps: 4.0, ..f })
            .collect();
        let tunnels = TunnelSet::initialize(&net, &flows, 2);
        let truth = TrueConditionals::ground_truth(&net, &model, 100, 7);
        Fixture { net, model, flows, tunnels, truth }
    }

    fn evaluator(fx: &Fixture) -> AvailabilityEvaluator<'_> {
        AvailabilityEvaluator::new(
            &fx.net,
            &fx.model,
            fx.flows.clone(),
            &fx.tunnels,
            &fx.truth,
            EvalConfig { top_k_degraded: 3, ..Default::default() },
        )
    }

    #[test]
    fn availability_in_unit_interval() {
        let fx = fixture();
        let ev = evaluator(&fx);
        let r = ev.evaluate(&EcmpScheme);
        assert_eq!(r.per_flow.len(), fx.flows.len());
        for &a in &r.per_flow {
            assert!((0.0..=1.0).contains(&a));
        }
        assert!(r.min <= r.mean + 1e-12 && r.mean <= 1.0, "min {} mean {}", r.min, r.mean);
    }

    #[test]
    fn ffc1_beats_ecmp_under_failures() {
        let fx = fixture();
        let ev = evaluator(&fx);
        let ecmp = ev.evaluate(&EcmpScheme);
        let ffc = ev.evaluate(&FfcScheme::one());
        assert!(
            ffc.mean >= ecmp.mean,
            "FFC {} < ECMP {}",
            ffc.mean,
            ecmp.mean
        );
    }

    #[test]
    fn prete_at_least_as_available_as_teavar() {
        // The headline claim at triangle scale: dynamic probabilities +
        // reactive tunnels never hurt availability.
        let fx = fixture();
        let ev = evaluator(&fx);
        let teavar = ev.evaluate(&TeaVarScheme::new(&fx.model, 0.99));
        let prete = ev.evaluate(&PreTeScheme::new(
            0.99,
            ProbabilityEstimator::prete(&fx.model, &fx.truth),
        ));
        assert!(
            prete.mean + 1e-9 >= teavar.mean,
            "PreTE {} < TeaVaR {}",
            prete.mean,
            teavar.mean
        );
    }

    #[test]
    fn oracle_split_at_least_as_good_as_plain() {
        let fx = fixture();
        let mut cfg = EvalConfig { top_k_degraded: 3, ..Default::default() };
        let plain = AvailabilityEvaluator::new(
            &fx.net,
            &fx.model,
            fx.flows.clone(),
            &fx.tunnels,
            &fx.truth,
            cfg,
        );
        let scheme =
            PreTeScheme::new(0.99, ProbabilityEstimator::prete(&fx.model, &fx.truth));
        let base = plain.evaluate(&scheme);
        cfg.oracle_outcome_split = true;
        let oracle_ev = AvailabilityEvaluator::new(
            &fx.net,
            &fx.model,
            fx.flows.clone(),
            &fx.tunnels,
            &fx.truth,
            cfg,
        );
        let oracle = oracle_ev.evaluate(&scheme);
        // The greedy inner solver does not guarantee pointwise
        // dominance (different branches polish toward different base
        // scenarios), so allow a hair of slack; the oracle must never
        // be *meaningfully* worse than planning under uncertainty.
        assert!(
            oracle.mean + 5e-5 >= base.mean,
            "oracle {} < plain {}",
            oracle.mean,
            base.mean
        );
    }

    #[test]
    fn nines_conversion() {
        let r = AvailabilityReport {
            scheme: "x".into(),
            per_flow: vec![],
            mean: 0.999,
            min: 0.999,
            admitted_gbps: 0.0,
        };
        assert!((r.nines() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overload_collapses_availability() {
        // At 5× demand the triangle cannot carry the traffic: every
        // scheme's availability drops far below 99 %.
        let fx = fixture();
        let scaled: Vec<Flow> = fx
            .flows
            .iter()
            .map(|f| Flow { demand_gbps: f.demand_gbps * 5.0, ..*f })
            .collect();
        let ev = AvailabilityEvaluator::new(
            &fx.net,
            &fx.model,
            scaled,
            &fx.tunnels,
            &fx.truth,
            EvalConfig::default(),
        );
        let r = ev.evaluate(&TeaVarScheme::new(&fx.model, 0.99));
        assert!(r.mean < 0.99, "availability {}", r.mean);
    }
}
