//! TeaVaR's native CVaR formulation (Bogle et al. \[6\]).
//!
//! The scheme comparison in [`crate::schemes`] models TeaVaR with the
//! joint scenario-selection LP that §2.2's worked example walks
//! through. The *original* TeaVaR optimization is subtly different: it
//! minimizes the **conditional value at risk** of the loss at level β,
//!
//! ```text
//!   CVaR_β(L) = min_α  α + 1/(1−β) · Σ_q p_q · max(0, L_q − α)
//! ```
//!
//! where `L_q` is the (max-over-flows) normalized loss in scenario `q`.
//! This module implements that LP exactly — both as an independent
//! validation of the scheme used in the sweeps and as the risk metric
//! the paper's availability methodology is built on.

use crate::capacity::CapacityGroups;
use crate::scenario::ScenarioSet;
use prete_lp::{solve, LinearProgram, Sense, SolveStatus, VarId};
use prete_topology::{Flow, Network, TunnelSet};

/// Result of a CVaR-minimizing solve.
#[derive(Debug, Clone)]
pub struct CvarSolution {
    /// Allocation per tunnel.
    pub allocation: Vec<f64>,
    /// The optimal value-at-risk `α` (β-quantile of the max loss).
    pub var: f64,
    /// The optimal `CVaR_β` (expected loss beyond the β-quantile).
    pub cvar: f64,
}

/// Minimizes `CVaR_β` of the maximum normalized flow loss over the
/// scenario set, subject to trunk capacities, for fixed demands.
///
/// Loss in scenario `q` for flow `f` is
/// `max(0, 1 − Σ_{t surviving q} a_t / d_f)`; `L_q = max_f loss_{f,q}`.
///
/// # Panics
/// Panics if the LP is unsolvable (it never is: `a = 0` with
/// `L_q = 1` is feasible) or `beta` is outside `(0, 1)`.
pub fn minimize_cvar(
    net: &Network,
    flows: &[Flow],
    tunnels: &TunnelSet,
    scenarios: &ScenarioSet,
    beta: f64,
) -> CvarSolution {
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    let groups = CapacityGroups::build(net);
    let mut lp = LinearProgram::new();
    let a_vars: Vec<VarId> =
        (0..tunnels.len()).map(|_| lp.var_nonneg(0.0)).collect();
    // α is a free quantile variable; losses live in [0,1] so α ∈ [0,1]
    // at any optimum.
    let alpha = lp.var_unit(1.0);
    // z_q ≥ L_q − α, weighted by p_q / (1−β).
    let z_vars: Vec<VarId> = scenarios
        .scenarios
        .iter()
        .map(|q| lp.var_nonneg(q.prob / (1.0 - beta)))
        .collect();
    // L_q variables.
    let l_vars: Vec<VarId> =
        (0..scenarios.len()).map(|_| lp.var_unit(0.0)).collect();

    // Capacity rows.
    let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); groups.len()];
    for t in tunnels.tunnels() {
        for g in groups.groups_of_path(&t.path.links) {
            group_terms[g].push((a_vars[t.id.index()], 1.0));
        }
    }
    for (g, terms) in group_terms.into_iter().enumerate() {
        lp.add_constraint(terms, Sense::Le, groups.capacity(g));
    }
    for (qi, q) in scenarios.scenarios.iter().enumerate() {
        // z_q ≥ L_q − α.
        lp.add_constraint(
            vec![(z_vars[qi], 1.0), (l_vars[qi], -1.0), (alpha, 1.0)],
            Sense::Ge,
            0.0,
        );
        // L_q ≥ 1 − Σ surviving a / d_f  ⇔  Σ surv a + d·L_q ≥ d.
        for flow in flows {
            if flow.demand_gbps <= 0.0 {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = tunnels
                .of_flow(flow.id)
                .iter()
                .filter(|&&t| tunnels.tunnel(t).survives(net, &q.cut))
                .map(|&t| (a_vars[t.index()], 1.0))
                .collect();
            terms.push((l_vars[qi], flow.demand_gbps));
            lp.add_constraint(terms, Sense::Ge, flow.demand_gbps);
        }
    }
    let sol = solve(&lp);
    assert_eq!(sol.status, SolveStatus::Optimal, "CVaR LP must solve");
    CvarSolution {
        allocation: a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        var: sol.value(alpha),
        cvar: sol.objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{triangle, triangle_flows, TRIANGLE_PROBS};
    use prete_topology::TunnelSet;

    fn setup(demand: f64) -> (Network, Vec<Flow>, TunnelSet, ScenarioSet) {
        let net = triangle();
        let flows: Vec<Flow> = triangle_flows()
            .into_iter()
            .map(|f| Flow { demand_gbps: demand, ..f })
            .collect();
        let tunnels = TunnelSet::initialize(&net, &flows, 2);
        let scenarios = ScenarioSet::enumerate(&TRIANGLE_PROBS, 2, 0.0);
        (net, flows, tunnels, scenarios)
    }

    #[test]
    fn light_load_has_zero_cvar() {
        // At 4 units per flow, every single-cut scenario is coverable.
        // With singles-only scenarios the β-tail loss is exactly 0;
        // with doubles included the tail keeps the unavoidable
        // both-tunnels-dead mass (≈ 6e-5 / (1−β) ≈ 0.006), so CVaR is
        // tiny but nonzero.
        let (net, flows, tunnels, _) = setup(4.0);
        let singles = ScenarioSet::enumerate(&TRIANGLE_PROBS, 1, 0.0);
        let s = minimize_cvar(&net, &flows, &tunnels, &singles, 0.99);
        assert!(s.cvar < 1e-6, "CVaR {}", s.cvar);
        assert!(s.var < 1e-6);
        let (_, _, _, with_doubles) = setup(4.0);
        let s2 = minimize_cvar(&net, &flows, &tunnels, &with_doubles, 0.99);
        assert!(s2.cvar < 0.01, "CVaR {}", s2.cvar);
    }

    #[test]
    fn heavy_load_has_positive_cvar() {
        // At full demand the triangle cannot protect both flows: some
        // tail loss is unavoidable at β = 99.9 %.
        let (net, flows, tunnels, scenarios) = setup(10.0);
        let s = minimize_cvar(&net, &flows, &tunnels, &scenarios, 0.999);
        assert!(s.cvar > 0.01, "CVaR {}", s.cvar);
    }

    #[test]
    fn cvar_monotone_in_beta() {
        // CVaR at a stricter level is never smaller.
        let (net, flows, tunnels, scenarios) = setup(10.0);
        let lo = minimize_cvar(&net, &flows, &tunnels, &scenarios, 0.99);
        let hi = minimize_cvar(&net, &flows, &tunnels, &scenarios, 0.9999);
        assert!(hi.cvar >= lo.cvar - 1e-9, "{} < {}", hi.cvar, lo.cvar);
    }

    #[test]
    fn cvar_bounds_var() {
        let (net, flows, tunnels, scenarios) = setup(10.0);
        let s = minimize_cvar(&net, &flows, &tunnels, &scenarios, 0.999);
        // CVaR ≥ VaR always.
        assert!(s.cvar + 1e-9 >= s.var, "cvar {} < var {}", s.cvar, s.var);
    }

    #[test]
    fn allocation_respects_capacity() {
        let (net, flows, tunnels, scenarios) = setup(10.0);
        let s = minimize_cvar(&net, &flows, &tunnels, &scenarios, 0.99);
        let groups = CapacityGroups::build(&net);
        let mut load = vec![0.0; groups.len()];
        for t in tunnels.tunnels() {
            for g in groups.groups_of_path(&t.path.links) {
                load[g] += s.allocation[t.id.index()];
            }
        }
        for (g, &l) in load.iter().enumerate() {
            assert!(l <= groups.capacity(g) + 1e-6, "group {g}: {l}");
        }
    }
}
