//! # PreTE — Traffic Engineering with Predictive Failures
//!
//! A reproduction of the SIGCOMM 2025 PreTE system. PreTE is a hybrid
//! TE scheme: when the optical layer reports a fiber *degradation*, the
//! controller (1) predicts the cut probability with an NN over the
//! degradation's features, (2) *reactively* establishes new tunnels for
//! the flows whose tunnels cross the degraded fiber (Algorithm 1), and
//! (3) *proactively* re-optimizes traffic allocation over the enlarged
//! tunnel set with the calibrated, degradation-conditioned failure
//! probabilities (Eqn 1), solving the Flexile-style MIP (2)–(8) with
//! Benders decomposition (Algorithm 2).
//!
//! Crate layout:
//!
//! * [`capacity`] — logical IP trunk groups (parallel wavelength links
//!   share fate and capacity);
//! * [`scenario`] — degradation states and probabilistic failure
//!   scenarios `q ∈ Q_s` with the product-form probabilities of §4.3;
//! * [`estimator`] — the Eqn 1 probability calibration, from static
//!   TeaVaR-style `p_i` to NN-conditioned dynamic probabilities and
//!   the oracle;
//! * [`algorithm1`] — reactive tunnel establishment for degraded
//!   fibers;
//! * [`optimizer`] — the TE optimization (2)–(8): an exact
//!   `l`-variable-eliminated reformulation solved by scenario-selection
//!   heuristic, Benders decomposition, or exact branch-and-bound;
//! * [`schemes`] — ECMP, FFC-1/2, TeaVaR, ARROW, Flexile, PreTE,
//!   PreTE-naive and the oracle, behind one [`schemes::TeScheme`]
//!   trait (plus the native CVaR formulation in [`cvar`]);
//! * [`eval`] — the availability evaluator behind Figures 13/15/16/17
//!   and Table 4, including reaction-time outage accounting;
//! * [`gain`] — demand-scale bisection for "satisfied demand at
//!   availability level" (Table 4).
//!
//! ## Quick start
//!
//! ```
//! use prete_core::prelude::*;
//!
//! // The Figure 2(a) network: three sites, three 10-unit links.
//! let net = prete_core::examples::triangle();
//! let flows = prete_core::examples::triangle_flows();
//! let tunnels = TunnelSet::initialize(&net, &flows, 2);
//! let probs = vec![0.005, 0.009, 0.001]; // per-fiber failure probability
//! let scenarios = ScenarioSet::enumerate(&probs, 2, 1e-9);
//! let problem = TeProblem::new(&net, &flows, &tunnels, &scenarios);
//! let sol = TeSolver::new(&problem)
//!     .beta(0.99)
//!     .method(SolveMethod::BranchAndBound)
//!     .solve()
//!     .expect("small instance solves within the default budget");
//! // TeaVaR's conservative optimum admits 10 units (Figure 2(b)).
//! assert!(sol.max_loss < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod capacity;
pub mod cvar;
pub mod estimator;
pub mod eval;
pub mod examples;
pub mod gain;
pub mod optimizer;
pub mod scenario;
pub mod schemes;

/// Convenient re-exports of the commonly used types across the
/// workspace (topology, optics, solver, schemes).
pub mod prelude {
    pub use crate::algorithm1::{update_tunnels, TunnelUpdateConfig};
    pub use crate::capacity::CapacityGroups;
    pub use crate::estimator::{ProbabilityEstimator, TrueConditionals};
    pub use crate::eval::{AvailabilityEvaluator, AvailabilityReport, EvalConfig};
    pub use crate::gain::max_supported_scale;
    pub use crate::optimizer::{
        ProblemConfig, SolveBudget, SolveMethod, SolverStats, TeProblem, TeSolution,
        TeSolveError, TeSolver,
    };
    pub use crate::scenario::{DegradationState, FailureScenario, ScenarioSet};
    pub use crate::schemes::{
        ArrowScheme, EcmpScheme, FfcScheme, FlexileScheme, PreTeScheme, TeScheme,
        TeaVarScheme,
    };
    pub use prete_lp::{BasisCache, ColdStart, EtaUpdate, Pricing, SolverBackend};
    pub use prete_obs::{Recorder, RunReport};
    pub use prete_optical::{Dataset, DatasetConfig, FailureModel};
    pub use prete_topology::{
        topologies, Flow, FlowId, Network, TrafficMatrix, TunnelSet,
    };
}
