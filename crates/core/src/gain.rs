//! Demand-scale search: "satisfied demand at an availability level".
//!
//! Table 4 reports PreTE's gain as the ratio of the maximum demand
//! scale each scheme sustains while keeping availability above a
//! target (99 % … 99.95 %). Availability is monotonically
//! non-increasing in the demand scale, so a bisection over the scale
//! suffices.

/// Finds (by bisection) the largest demand scale in `[lo, hi]` whose
/// availability, as computed by `availability_at`, still meets
/// `target`. Returns `None` if even `lo` misses the target.
///
/// `availability_at` is expected to be non-increasing in the scale;
/// `iters` bisection steps give a resolution of `(hi-lo)/2^iters`.
pub fn max_supported_scale(
    mut availability_at: impl FnMut(f64) -> f64,
    target: f64,
    lo: f64,
    hi: f64,
    iters: usize,
) -> Option<f64> {
    assert!(lo > 0.0 && hi > lo, "invalid bracket [{lo}, {hi}]");
    assert!((0.0..1.0).contains(&target));
    if availability_at(lo) < target {
        return None;
    }
    let mut good = lo;
    let mut bad = hi;
    if availability_at(hi) >= target {
        return Some(hi);
    }
    for _ in 0..iters {
        let mid = 0.5 * (good + bad);
        if availability_at(mid) >= target {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Some(good)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_finds_threshold() {
        // availability = 1 - scale/10 → target 0.7 crossed at scale 3.
        let f = |s: f64| 1.0 - s / 10.0;
        let m = max_supported_scale(f, 0.7, 0.5, 8.0, 30).unwrap();
        assert!((m - 3.0).abs() < 1e-6, "{m}");
    }

    #[test]
    fn target_unreachable_returns_none() {
        let f = |_s: f64| 0.5;
        assert!(max_supported_scale(f, 0.9, 1.0, 4.0, 10).is_none());
    }

    #[test]
    fn saturated_returns_hi() {
        let f = |_s: f64| 0.9999;
        assert_eq!(max_supported_scale(f, 0.99, 1.0, 8.0, 10), Some(8.0));
    }

    #[test]
    fn counts_calls_reasonably() {
        let mut calls = 0;
        let f = |s: f64| {
            calls += 1;
            1.0 - s / 10.0
        };
        let _ = max_supported_scale(f, 0.5, 1.0, 9.0, 12);
        assert!(calls <= 15, "{calls} calls");
    }
}
