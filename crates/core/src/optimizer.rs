//! The PreTE TE optimization (2)–(8) and its solvers.
//!
//! ## Exact reformulation
//!
//! The paper's program carries per-(flow, scenario) loss variables
//! `l_{f,q}`. For any fixed scenario selection `δ`, the minimal
//! feasible `l_{f,q}` is `max(0, 1 − Σ_t a_{f,t}/d_f)` and constraints
//! (4) + (6) collapse to the single *coverage* row
//!
//! ```text
//!     Σ_{t ∈ T_{f,q} ∪ Y_{f,q}^s} a_{f,t} + d_f·Φ  ≥  d_f·δ_{f,q}
//! ```
//!
//! with `δ` appearing only on the right-hand side — exactly the shape
//! Benders decomposition wants (Appendix A.4: the subproblem sizes are
//! "independent of the number of δ to be addressed"). Rows are emitted
//! only for the no-failure scenario and the scenarios that actually
//! kill one of the flow's tunnels; an unaffecting scenario's row is
//! identical to the no-failure row and would be redundant.
//!
//! ## Solvers
//!
//! * [`SolveMethod::Heuristic`] — per flow, select scenarios greedily
//!   by decreasing probability until constraint (5) holds, then one LP.
//!   Fast; used by the large availability sweeps.
//! * [`SolveMethod::Benders`] — Algorithm 2: iterate subproblem (LP,
//!   duals → optimality cut Eqn 11) and master (small binary program)
//!   until `UB − LB ≤ ε`.
//! * [`SolveMethod::BranchAndBound`] — the full MIP via `prete-lp`,
//!   exact on small instances; the tests use it as the reference the
//!   other two must match.

use crate::capacity::CapacityGroups;
use crate::scenario::ScenarioSet;
use prete_lp::{
    solve_mip, BasisCache, ColdStart, ConstraintId, EtaUpdate, LinearProgram, MipOptions,
    MipStatus, Pricing, Sense, SimplexOptions, SolveStatus, SolverBackend, VarId,
    WarmSimplex,
};
use prete_obs::Recorder;
use prete_topology::{Flow, Network, TunnelId, TunnelSet};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Resolves a requested thread count (`0` = all available cores).
fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// How to solve the scenario-selection MIP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveMethod {
    /// Greedy per-flow scenario selection + one LP (fast, near-optimal
    /// at WAN failure rates).
    Heuristic,
    /// Benders decomposition (Algorithm 2) with gap `eps` and at most
    /// `max_iters` iterations.
    Benders {
        /// Convergence gap `ε` on `UB − LB`.
        eps: f64,
        /// Iteration cap.
        max_iters: usize,
    },
    /// Exact branch-and-bound over the full MIP (small instances only).
    BranchAndBound,
}

impl SolveMethod {
    /// Benders with the defaults used in the evaluation (ε = 1e-4,
    /// 25 iterations).
    pub fn benders() -> Self {
        SolveMethod::Benders { eps: 1e-4, max_iters: 25 }
    }
}

/// Typed construction knobs for [`TeProblem`] — a config struct instead
/// of bare positional `f64`/`usize` parameters, so numeric knobs cannot
/// be transposed silently at call sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemConfig {
    /// Worker threads for the per-flow survival precompute (`0` = all
    /// available cores, `1` = serial). Flows are processed in fixed
    /// chunks with per-flow-independent arithmetic, so every thread
    /// count produces identical results.
    pub precompute_threads: usize,
    /// Failure scenarios per flow that get an explicit delivery
    /// variable in the allocation polish pass (most probable first).
    pub polish_scenarios_per_flow: usize,
    /// Slack added to the frozen `Φ` in the polish pass to absorb LP
    /// round-off.
    pub polish_slack: f64,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        Self { precompute_threads: 1, polish_scenarios_per_flow: 6, polish_slack: 1e-9 }
    }
}

/// A TE problem instance: network, flows with demands, tunnels
/// (pre-established plus any reactive ones), and the scenario set.
#[derive(Debug)]
pub struct TeProblem<'a> {
    /// The network.
    pub net: &'a Network,
    /// Flows with demands.
    pub flows: &'a [Flow],
    /// Tunnels (`T_f ∪ Y_f^s`).
    pub tunnels: &'a TunnelSet,
    /// Failure scenarios `Q_s`.
    pub scenarios: &'a ScenarioSet,
    /// Capacity trunk groups.
    pub groups: CapacityGroups,
    /// Construction/polish knobs.
    config: ProblemConfig,
    /// `surviving[f][q]` = tunnel ids of flow `f` alive in scenario `q`.
    surviving: Vec<Vec<Vec<TunnelId>>>,
    /// Per flow: scenario indices (≠ 0) that kill at least one tunnel.
    affecting: Vec<Vec<usize>>,
}

impl<'a> TeProblem<'a> {
    /// Builds a problem with default [`ProblemConfig`].
    pub fn new(
        net: &'a Network,
        flows: &'a [Flow],
        tunnels: &'a TunnelSet,
        scenarios: &'a ScenarioSet,
    ) -> Self {
        Self::with_config(net, flows, tunnels, scenarios, ProblemConfig::default())
    }

    /// Builds a problem, precomputing per-flow tunnel survivals (in
    /// parallel when `config.precompute_threads > 1`).
    pub fn with_config(
        net: &'a Network,
        flows: &'a [Flow],
        tunnels: &'a TunnelSet,
        scenarios: &'a ScenarioSet,
        config: ProblemConfig,
    ) -> Self {
        let groups = CapacityGroups::build(net);
        // Per flow: (surviving tunnels per scenario, affecting scenarios).
        type FlowSurvival = (Vec<Vec<TunnelId>>, Vec<usize>);
        let compute = |flow: &Flow| -> FlowSurvival {
            let all = tunnels.of_flow(flow.id).to_vec();
            let mut per_q = Vec::with_capacity(scenarios.len());
            let mut aff = Vec::new();
            for (qi, q) in scenarios.scenarios.iter().enumerate() {
                let surv: Vec<TunnelId> = all
                    .iter()
                    .copied()
                    .filter(|&t| tunnels.tunnel(t).survives(net, &q.cut))
                    .collect();
                if qi != 0 && surv.len() != all.len() {
                    aff.push(qi);
                }
                per_q.push(surv);
            }
            (per_q, aff)
        };
        let threads = effective_threads(config.precompute_threads);
        let per_flow: Vec<FlowSurvival> = if threads > 1 && flows.len() > 1 {
            // Fixed chunking over disjoint output slices: each flow is
            // computed independently, so the fan-out is bit-identical
            // to the serial loop at any thread count.
            let mut out: Vec<Option<FlowSurvival>> = vec![None; flows.len()];
            let chunk = flows.len().div_ceil(threads);
            std::thread::scope(|s| {
                for (outs, fls) in out.chunks_mut(chunk).zip(flows.chunks(chunk)) {
                    s.spawn(move || {
                        for (o, flow) in outs.iter_mut().zip(fls) {
                            *o = Some(compute(flow));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("chunk filled")).collect()
        } else {
            flows.iter().map(compute).collect()
        };
        let (surviving, affecting) = per_flow.into_iter().unzip();
        Self { net, flows, tunnels, scenarios, groups, config, surviving, affecting }
    }

    /// The configuration this problem was built with.
    pub fn config(&self) -> ProblemConfig {
        self.config
    }

    /// A hash of the problem's structural skeleton (flow/tunnel/scenario
    /// counts and per-flow affecting sets) — the key under which warm
    /// bases are cached across solves. Two problems with equal keys have
    /// LPs of identical shape; coefficient drift (demands, capacities)
    /// is fine because a restored basis revalidates structurally.
    pub fn structure_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.flows.len().hash(&mut h);
        self.tunnels.len().hash(&mut h);
        self.scenarios.len().hash(&mut h);
        self.groups.len().hash(&mut h);
        for aff in &self.affecting {
            aff.hash(&mut h);
        }
        h.finish()
    }

    /// Tunnels of flow `f` (by dense index) surviving scenario `q`.
    pub fn surviving(&self, f: usize, q: usize) -> &[TunnelId] {
        &self.surviving[f][q]
    }

    /// Scenario indices affecting flow `f` (excluding the no-failure
    /// scenario 0).
    pub fn affecting(&self, f: usize) -> &[usize] {
        &self.affecting[f]
    }

    /// Probability mass of scenarios that do NOT affect flow `f`
    /// (excluding scenario 0) — implicitly selected in the master.
    pub fn unaffecting_mass(&self, f: usize) -> f64 {
        let aff = &self.affecting[f];
        self.scenarios
            .scenarios
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(qi, _)| !aff.contains(qi))
            .map(|(_, q)| q.prob)
            .sum()
    }
}

/// A solved TE policy.
///
/// Serializable (and comparable) so a controller checkpoint can carry
/// its last-known-good policy across a crash; the float fields are
/// finite in any solution a solver returns, so `PartialEq` is exact.
#[must_use]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeSolution {
    /// Allocated bandwidth per tunnel (indexed by [`TunnelId`]).
    pub allocation: Vec<f64>,
    /// The optimized maximum β-loss `Φ` across flows.
    pub max_loss: f64,
    /// Scenario selection: `delta[f]` lists the *selected* scenario
    /// indices for flow `f` (implicitly includes unaffecting ones).
    pub delta: Vec<Vec<usize>>,
    /// Number of LP solves performed.
    pub lp_solves: usize,
    /// Benders iterations (0 for the other methods).
    pub benders_iters: usize,
}

impl TeSolution {
    /// Bandwidth delivered to flow `f` (dense index) in scenario `q`:
    /// `min(d_f, Σ surviving allocation)`.
    pub fn delivered(&self, p: &TeProblem<'_>, f: usize, q: usize) -> f64 {
        let total: f64 = p.surviving(f, q).iter().map(|&t| self.allocation[t.index()]).sum();
        total.min(p.flows[f].demand_gbps)
    }

    /// Normalized loss of flow `f` in scenario `q`.
    pub fn loss(&self, p: &TeProblem<'_>, f: usize, q: usize) -> f64 {
        let d = p.flows[f].demand_gbps;
        if d <= 0.0 {
            return 0.0;
        }
        (1.0 - self.delivered(p, f, q) / d).max(0.0)
    }
}

/// Observability counters for one TE solve, returned by
/// [`TeSolver::solve_with_stats`] and aggregated per epoch by the
/// simulation controllers.
///
/// Wall-clock fields (`*_ms`) are measurements and vary run to run;
/// every other field is a deterministic work-unit count. Equality
/// (`PartialEq`) compares **only** the deterministic fields, so reports
/// embedding stats keep the repo's bit-identical-replay guarantees.
#[must_use]
#[derive(Debug, Clone, Default, Serialize)]
pub struct SolverStats {
    /// End-to-end wall time of the solve.
    pub total_ms: f64,
    /// Wall time in subproblem LP solves (cold + warm).
    pub subproblem_ms: f64,
    /// Wall time in Benders master / B&B MIP solves.
    pub master_ms: f64,
    /// Wall time in the allocation polish LP.
    pub polish_ms: f64,
    /// LP solves performed (subproblem, polish and warm re-solves;
    /// B&B node relaxations are counted under `mip_nodes`).
    pub lp_solves: usize,
    /// Simplex pivots across the tracked LP solves.
    pub pivots: usize,
    /// Benders iterations (0 for the other methods).
    pub benders_iters: usize,
    /// Benders optimality cuts added to the master.
    pub cuts_added: usize,
    /// Branch-and-bound nodes explored (master + exact MIP).
    pub mip_nodes: usize,
    /// Warm starts that restored a cached or live basis.
    pub warm_hits: usize,
    /// Solves that wanted a warm start but fell back cold.
    pub warm_misses: usize,
    /// Rhs-only dual-simplex re-solves inside the Benders loop.
    pub rhs_resolves: usize,
    /// Warm-basis cache entries evicted (LRU) during this solve.
    pub cache_evictions: usize,
    /// Basis LU (re)factorizations in the sparse engine (0 under the
    /// dense backend).
    pub refactorizations: u64,
    /// Product-form eta updates appended in the sparse engine.
    pub etas: u64,
    /// Cumulative LU fill-in (factor nonzeros beyond basis nonzeros)
    /// in the sparse engine.
    pub fill_in: u64,
    /// Forrest–Tomlin pivot rollbacks: pivots undone and re-priced
    /// because the post-pivot refactorization failed (always 0 under
    /// product-form updates).
    pub ft_rollbacks: u64,
    /// Sparse solves that hit a singular factorization and were
    /// answered by the dense fallback engine.
    pub dense_fallbacks: usize,
    /// Worker threads the solve was configured with.
    pub threads: usize,
    /// Pricing rule the solve was configured with (configuration
    /// label, not a work unit).
    pub pricing: Pricing,
    /// Basis-update scheme the solve was configured with
    /// (configuration label, not a work unit).
    pub eta_update: EtaUpdate,
    /// Cold-start strategy the solve was configured with
    /// (configuration label, not a work unit).
    pub cold_start: ColdStart,
}

impl SolverStats {
    /// Accumulates another solve's counters into this one (wall times
    /// and work units add; `threads` keeps the maximum seen).
    pub fn merge(&mut self, other: &SolverStats) {
        self.total_ms += other.total_ms;
        self.subproblem_ms += other.subproblem_ms;
        self.master_ms += other.master_ms;
        self.polish_ms += other.polish_ms;
        self.lp_solves += other.lp_solves;
        self.pivots += other.pivots;
        self.benders_iters += other.benders_iters;
        self.cuts_added += other.cuts_added;
        self.mip_nodes += other.mip_nodes;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
        self.rhs_resolves += other.rhs_resolves;
        self.cache_evictions += other.cache_evictions;
        self.refactorizations += other.refactorizations;
        self.etas += other.etas;
        self.fill_in += other.fill_in;
        self.ft_rollbacks += other.ft_rollbacks;
        self.dense_fallbacks += other.dense_fallbacks;
        self.threads = self.threads.max(other.threads);
        // Configuration labels: the accumulator adopts the merged
        // solve's choices, so a default-initialized epoch accumulator
        // ends up labelled with what actually ran.
        self.pricing = other.pricing;
        self.eta_update = other.eta_update;
        self.cold_start = other.cold_start;
    }

    /// Total deterministic solver work-units for this solve: the same
    /// definition the fleet budgets rounds with
    /// (pivots + lp_solves + mip_nodes + benders_iters +
    /// rhs_resolves) — never wall clock.
    pub fn work_units(&self) -> u64 {
        (self.pivots
            + self.lp_solves
            + self.mip_nodes
            + self.benders_iters
            + self.rhs_resolves) as u64
    }

    /// Fraction of warm-start attempts that hit, in `[0, 1]` (0 when
    /// warm starting never applied).
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    /// Publishes this solve's counters and timings into a
    /// [`Recorder`], making the stats part of the run report instead of
    /// a side-channel. Work units become `solver.*` counters. Under a
    /// live clock, wall times feed `solver.*_ms` histograms and the
    /// thread count becomes a gauge; under a deterministic clock those
    /// are machine-dependent and excluded, and *logical-duration*
    /// histograms (work-unit counts per solve) are recorded instead so
    /// deterministic reports still carry full percentile tables.
    pub fn publish(&self, rec: &Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.add("solver.lp_solves", self.lp_solves as u64);
        rec.add("solver.pivots", self.pivots as u64);
        rec.add("solver.benders_iters", self.benders_iters as u64);
        rec.add("solver.cuts_added", self.cuts_added as u64);
        rec.add("solver.mip_nodes", self.mip_nodes as u64);
        rec.add("solver.warm_hits", self.warm_hits as u64);
        rec.add("solver.warm_misses", self.warm_misses as u64);
        rec.add("solver.rhs_resolves", self.rhs_resolves as u64);
        rec.add("solver.cache_evictions", self.cache_evictions as u64);
        rec.add("solver.refactorizations", self.refactorizations);
        rec.add("solver.etas", self.etas);
        rec.add("solver.fill_in", self.fill_in);
        rec.add("solver.ft_rollbacks", self.ft_rollbacks);
        rec.add("solver.dense_fallbacks", self.dense_fallbacks as u64);
        if !rec.is_deterministic() {
            // The thread count is an execution parameter like the wall
            // times: deterministic reports must be identical across
            // thread counts, so neither belongs there.
            rec.gauge("solver.threads", self.threads as f64);
            rec.observe("solver.total_ms", self.total_ms);
            rec.observe("solver.subproblem_ms", self.subproblem_ms);
            rec.observe("solver.master_ms", self.master_ms);
            rec.observe("solver.polish_ms", self.polish_ms);
        } else {
            // Logical durations: per-solve work-unit counts are a pure
            // function of the work performed, so they are safe in
            // byte-identical reports and give deterministic runs full
            // percentile tables (the PR 3 wall-time skip left these
            // reports without any histograms at all).
            rec.observe("solver.total_units", self.work_units() as f64);
            rec.observe("solver.pivot_units", self.pivots as f64);
            rec.observe("solver.eta_units", self.etas as f64);
            rec.observe("solver.refactorization_units", self.refactorizations as f64);
            rec.observe("solver.rhs_resolve_units", self.rhs_resolves as f64);
        }
    }
}

impl PartialEq for SolverStats {
    /// Deterministic work-unit fields only — wall-clock measurements,
    /// the machine-dependent thread count and the configuration labels
    /// (`pricing`, `eta_update`) are excluded so replays on any
    /// machine compare equal when they did the same work.
    fn eq(&self, other: &Self) -> bool {
        self.lp_solves == other.lp_solves
            && self.pivots == other.pivots
            && self.benders_iters == other.benders_iters
            && self.cuts_added == other.cuts_added
            && self.mip_nodes == other.mip_nodes
            && self.warm_hits == other.warm_hits
            && self.warm_misses == other.warm_misses
            && self.rhs_resolves == other.rhs_resolves
            && self.cache_evictions == other.cache_evictions
            && self.refactorizations == other.refactorizations
            && self.etas == other.etas
            && self.fill_in == other.fill_in
            && self.ft_rollbacks == other.ft_rollbacks
            && self.dense_fallbacks == other.dense_fallbacks
    }
}

/// Builder for TE solves: owns `beta`, the [`SolveMethod`], the
/// [`SolveBudget`], the thread count and an optional warm-start
/// [`BasisCache`], replacing the positional-argument
/// `solve_te(problem, beta, method)` family.
///
/// ```
/// use prete_core::prelude::*;
///
/// let net = prete_core::examples::triangle();
/// let flows = prete_core::examples::triangle_flows();
/// let tunnels = TunnelSet::initialize(&net, &flows, 2);
/// let scenarios = ScenarioSet::enumerate(&[0.005, 0.009, 0.001], 2, 1e-9);
/// let problem = TeProblem::new(&net, &flows, &tunnels, &scenarios);
/// let sol = TeSolver::new(&problem)
///     .beta(0.99)
///     .method(SolveMethod::benders())
///     .solve()
///     .expect("within budget");
/// assert!(sol.max_loss < 1e-6);
/// ```
#[must_use]
#[derive(Debug)]
pub struct TeSolver<'p, 'a, 'c> {
    problem: &'p TeProblem<'a>,
    beta: f64,
    method: SolveMethod,
    budget: SolveBudget,
    threads: usize,
    backend: SolverBackend,
    pricing: Pricing,
    eta_update: EtaUpdate,
    cold_start: ColdStart,
    cache: Option<&'c mut BasisCache>,
    recorder: Recorder,
}

impl<'p, 'a, 'c> TeSolver<'p, 'a, 'c> {
    /// Creates a solver for `problem` with defaults: `beta = 0.99`,
    /// [`SolveMethod::Heuristic`], the default [`SolveBudget`], all
    /// available cores, default pricing/eta-update rules, no
    /// warm-start cache, no recorder.
    pub fn new(problem: &'p TeProblem<'a>) -> Self {
        Self {
            problem,
            beta: 0.99,
            method: SolveMethod::Heuristic,
            budget: SolveBudget::default(),
            threads: 0,
            backend: SolverBackend::default(),
            pricing: Pricing::default(),
            eta_update: EtaUpdate::default(),
            cold_start: ColdStart::default(),
            cache: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Availability target `β ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics when `beta` is outside `(0, 1)` — a caller bug, caught at
    /// build time instead of deep inside a solve.
    pub fn beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1), got {beta}");
        self.beta = beta;
        self
    }

    /// Solve method (heuristic, Benders, exact branch-and-bound).
    pub fn method(mut self, method: SolveMethod) -> Self {
        self.method = method;
        self
    }

    /// Deterministic work budget, surfacing exhaustion as
    /// [`TeSolveError::BudgetExceeded`] instead of panicking.
    ///
    /// Semantics per method:
    /// * `Heuristic` — two LP solves, always feasible (`Φ = 1` is a
    ///   valid point), so it only fails on a fully spent budget
    ///   (`max_benders_iters == 0`, "no solver work allowed").
    /// * `Benders` — the iteration cap is the tighter of the method's
    ///   own `max_iters` and the budget's; a zero cap fails
    ///   immediately, otherwise the incumbent after the capped loop is
    ///   returned.
    /// * `BranchAndBound` — the exact MIP honours `max_mip_nodes` and
    ///   reports `BudgetExceeded` / `Infeasible` instead of asserting.
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Worker threads (`0` = all available cores). Any value produces
    /// bit-identical solutions; see DESIGN.md "Solver architecture".
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// LP engine for every solve under this solver (subproblems,
    /// polish, master relaxations). Defaults to
    /// [`SolverBackend::SparseRevised`]; the dense tableau remains
    /// available as an oracle and is the automatic fallback when a
    /// sparse factorization goes singular (counted in
    /// [`SolverStats::dense_fallbacks`]).
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Entering-variable pricing rule for the sparse engine
    /// ([`Pricing::Dantzig`] segmented partial pricing by default,
    /// [`Pricing::Devex`] reference-framework pricing to cut pivot
    /// counts on large programs). Ignored by the dense oracle backend.
    pub fn pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Basis-update scheme for the sparse engine
    /// ([`EtaUpdate::ProductForm`] eta file by default,
    /// [`EtaUpdate::ForrestTomlin`] LU updates with
    /// stability-triggered refactorization). Ignored by the dense
    /// oracle backend.
    pub fn eta_update(mut self, eta_update: EtaUpdate) -> Self {
        self.eta_update = eta_update;
        self
    }

    /// Cold-start strategy for the sparse engine
    /// ([`ColdStart::TwoPhase`] by default: the classic primal
    /// two-phase sequence, reproducing historical pivot paths;
    /// [`ColdStart::Auto`] opts into a single dual simplex pass from
    /// the all-slack basis whenever the program qualifies — the fast
    /// path the benchmark gate measures). Ignored by the dense oracle
    /// backend.
    pub fn cold_start(mut self, cold_start: ColdStart) -> Self {
        self.cold_start = cold_start;
        self
    }

    /// Warm-starts LP solves from `cache` (keyed by
    /// [`TeProblem::structure_key`]) and saves the optimal bases back,
    /// so successive epochs skip simplex phase 1.
    pub fn warm_cache(mut self, cache: &'c mut BasisCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Streams solver telemetry (warm-start hits, Benders iterations,
    /// final [`SolverStats`]) into `recorder`; the solve itself runs
    /// under a `"solve"` span.
    pub fn recorder(mut self, recorder: &Recorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Runs the solve.
    pub fn solve(self) -> Result<TeSolution, TeSolveError> {
        self.solve_with_stats().map(|(sol, _)| sol)
    }

    /// Runs the solve and reports [`SolverStats`] alongside the
    /// solution.
    pub fn solve_with_stats(self) -> Result<(TeSolution, SolverStats), TeSolveError> {
        let t0 = Instant::now();
        let recorder = self.recorder;
        let span = recorder.span("solve");
        let threads = effective_threads(self.threads);
        recorder.event_with("solver.backend", || format!("{:?}", self.backend));
        recorder.event_with("solver.pricing", || format!("{:?}", self.pricing));
        recorder.event_with("solver.eta-update", || format!("{:?}", self.eta_update));
        recorder.event_with("solver.cold-start", || format!("{:?}", self.cold_start));
        let evictions_before = self.cache.as_ref().map_or(0, |c| c.evictions());
        let mut ctx = SolveCtx {
            problem: self.problem,
            threads,
            backend: self.backend,
            pricing: self.pricing,
            eta_update: self.eta_update,
            cold_start: self.cold_start,
            cache: self.cache,
            stats: SolverStats {
                threads,
                pricing: self.pricing,
                eta_update: self.eta_update,
                cold_start: self.cold_start,
                ..SolverStats::default()
            },
            obs: recorder.clone(),
        };
        let budget = self.budget;
        let result = match self.method {
            SolveMethod::Heuristic => {
                if budget.max_benders_iters == 0 && budget.max_mip_nodes == 0 {
                    Err(TeSolveError::BudgetExceeded { nodes: 0 })
                } else {
                    Ok(ctx.heuristic(self.beta))
                }
            }
            SolveMethod::Benders { eps, max_iters } => {
                let cap = max_iters.min(budget.max_benders_iters);
                if cap == 0 {
                    Err(TeSolveError::BudgetExceeded { nodes: 0 })
                } else {
                    Ok(ctx.benders(self.beta, eps, cap))
                }
            }
            SolveMethod::BranchAndBound => {
                if budget.max_mip_nodes == 0 {
                    Err(TeSolveError::BudgetExceeded { nodes: 0 })
                } else {
                    let opts = MipOptions {
                        max_nodes: budget.max_mip_nodes,
                        simplex: ctx.simplex_opts(),
                        ..MipOptions::default()
                    };
                    ctx.bnb(self.beta, opts)
                }
            }
        };
        ctx.stats.total_ms = t0.elapsed().as_secs_f64() * 1e3;
        if let Some(cache) = ctx.cache.as_ref() {
            ctx.stats.cache_evictions = cache.evictions() - evictions_before;
        }
        drop(span);
        ctx.stats.publish(&recorder);
        if let Err(e) = &result {
            recorder.event_with("solve-failed", || e.to_string());
        }
        result.map(|sol| (sol, ctx.stats))
    }
}

/// Deterministic work budget for a fallible TE solve.
///
/// Budgets are expressed in solver work units — branch-and-bound nodes
/// and Benders iterations — rather than wall-clock time, so a replay
/// with a fixed fault plan produces bit-identical results on any
/// machine. The controller converts its wall-clock deadline into work
/// units once, up front, via its latency model.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, serde::Deserialize)]
pub struct SolveBudget {
    /// Maximum branch-and-bound nodes for a MIP solve.
    pub max_mip_nodes: usize,
    /// Maximum Benders master/subproblem iterations.
    pub max_benders_iters: usize,
}

impl Default for SolveBudget {
    fn default() -> Self {
        Self { max_mip_nodes: 100_000, max_benders_iters: 50 }
    }
}

impl SolveBudget {
    /// A budget that is already spent — every budgeted solve fails
    /// immediately with [`TeSolveError::BudgetExceeded`]. Used by fault
    /// injection to model a solver that cannot meet its deadline.
    pub fn exhausted() -> Self {
        Self { max_mip_nodes: 0, max_benders_iters: 0 }
    }
}

/// Why a budgeted TE solve produced no usable policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeSolveError {
    /// The solver ran out of its work budget before proving optimality.
    BudgetExceeded {
        /// Work units consumed when the budget tripped (B&B nodes, or
        /// Benders iterations for the decomposition path).
        nodes: usize,
    },
    /// The program admits no feasible point (only possible for the
    /// exact MIP; the LP relaxation used by the heuristic always admits
    /// `Φ = 1`).
    Infeasible,
}

impl std::fmt::Display for TeSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeSolveError::BudgetExceeded { nodes } => {
                write!(f, "TE solve exceeded its work budget after {nodes} nodes")
            }
            TeSolveError::Infeasible => f.write_str("TE program is infeasible"),
        }
    }
}

impl std::error::Error for TeSolveError {}

/// Per-flow greedy δ: scenario 0 plus affecting scenarios in decreasing
/// probability until `p_0 + unaffecting + selected ≥ beta`.
fn greedy_delta(problem: &TeProblem<'_>, beta: f64) -> Vec<Vec<usize>> {
    let scen = &problem.scenarios.scenarios;
    (0..problem.flows.len())
        .map(|f| {
            let mut selected = vec![0usize];
            let mut mass = scen[0].prob + problem.unaffecting_mass(f);
            // Affecting scenarios sorted by decreasing probability.
            let mut aff: Vec<usize> = problem.affecting(f).to_vec();
            aff.sort_by(|&a, &b| {
                scen[b].prob.partial_cmp(&scen[a].prob).expect("finite").then(a.cmp(&b))
            });
            for qi in aff {
                if mass >= beta {
                    break;
                }
                selected.push(qi);
                mass += scen[qi].prob;
            }
            // When the enumerated set cannot reach β (deep cuts pruned
            // by the scenario cutoff), the best the scheme can do is
            // protect everything it enumerated — constraint (5) is then
            // met up to the un-enumerated residual mass.
            selected
        })
        .collect()
}

/// Builds and solves the subproblem LP for a fixed selection, returning
/// `(allocation, Φ, capacity duals, coverage duals keyed by (f, qi))`.
struct SubproblemResult {
    allocation: Vec<f64>,
    phi: f64,
    /// dual per capacity group (≤ 0 under the min convention).
    cap_duals: Vec<f64>,
    /// (flow, scenario, dual ≥ 0) for each coverage row.
    cov_duals: Vec<(usize, usize, f64)>,
}

/// Cache-key salts separating the LP families that share one problem
/// structure (a basis from one family must not seed another; the
/// structural signature would reject it anyway, but separate keys keep
/// the hit-rate numbers honest).
const CACHE_SALT_HEURISTIC: u64 = 0x5eed_0001;
const CACHE_SALT_BENDERS: u64 = 0x5eed_0002;
const CACHE_SALT_POLISH: u64 = 0x5eed_0003;

fn hash_delta(delta: &[Vec<usize>]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    delta.hash(&mut h);
    h.finish()
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Per-solve context: configuration plus the stats being accumulated.
struct SolveCtx<'p, 'a, 'c> {
    problem: &'p TeProblem<'a>,
    threads: usize,
    backend: SolverBackend,
    pricing: Pricing,
    eta_update: EtaUpdate,
    cold_start: ColdStart,
    cache: Option<&'c mut BasisCache>,
    stats: SolverStats,
    obs: Recorder,
}

impl SolveCtx<'_, '_, '_> {
    fn simplex_opts(&self) -> SimplexOptions {
        SimplexOptions {
            threads: self.threads,
            backend: self.backend,
            pricing: self.pricing,
            eta_update: self.eta_update,
            cold_start: self.cold_start,
            ..SimplexOptions::default()
        }
    }

    /// Folds a solve's engine counters (sparse refactorizations, etas,
    /// fill-in, FT rollbacks, dense fallbacks) into the stats.
    fn absorb_engine(&mut self, sol: &prete_lp::Solution) {
        self.stats.refactorizations += sol.engine.refactorizations;
        self.stats.etas += sol.engine.etas;
        self.stats.fill_in += sol.engine.fill_in;
        if sol.engine.rollbacks > 0 {
            self.stats.ft_rollbacks += sol.engine.rollbacks;
            self.obs.event_with("solver.ft-rollback", || {
                format!("{} pivot(s) rolled back", sol.engine.rollbacks)
            });
        }
        if sol.engine.dense_fallback {
            self.stats.dense_fallbacks += 1;
            self.obs.event("solver.dense-fallback", "singular sparse factorization");
        }
    }

    /// Solves `lp`, seeding from the basis cached under `key` when a
    /// cache is attached, and saves the optimal basis back.
    fn warm_solve(&mut self, lp: &LinearProgram, key: u64) -> prete_lp::Solution {
        let mut ws = WarmSimplex::new(self.simplex_opts());
        let warm = self.cache.as_mut().and_then(|c| c.get(key)).cloned();
        let (sol, used) = ws.solve_from(lp, warm.as_ref());
        self.absorb_engine(&sol);
        if self.cache.is_some() {
            if used {
                self.stats.warm_hits += 1;
                self.obs.event_with("solver.warm-start", || format!("hit key={key:#x}"));
            } else {
                self.stats.warm_misses += 1;
                self.obs.event_with("solver.warm-start", || format!("miss key={key:#x}"));
            }
        }
        self.stats.lp_solves += 1;
        self.stats.pivots += sol.iterations;
        if let Some(b) = ws.basis() {
            if let Some(c) = self.cache.as_mut() {
                c.put(key, b);
            }
        }
        sol
    }

    /// Builds and solves the selected-rows subproblem LP (heuristic
    /// path: one LP per solve, warm-started across epochs).
    fn subproblem(&mut self, delta: &[Vec<usize>]) -> SubproblemResult {
        let t0 = Instant::now();
        let problem = self.problem;
        let n_tunnels = problem.tunnels.len();
        let mut lp = LinearProgram::new();
        let a_vars: Vec<VarId> =
            (0..n_tunnels).map(|_| lp.var_nonneg(0.0)).collect();
        let phi = lp.var_nonneg(1.0);

        // Capacity rows (Eqn 3), per trunk group.
        let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
        for t in problem.tunnels.tunnels() {
            for g in problem.groups.groups_of_path(&t.path.links) {
                group_terms[g].push((a_vars[t.id.index()], 1.0));
            }
        }
        let mut cap_rows = Vec::with_capacity(problem.groups.len());
        for (g, terms) in group_terms.into_iter().enumerate() {
            cap_rows.push(lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g)));
        }

        // Coverage rows: Σ surviving a + d·Φ ≥ d for each selected (f, q).
        let mut cov_rows = Vec::new();
        for (f, selected) in delta.iter().enumerate() {
            let d = problem.flows[f].demand_gbps;
            if d <= 0.0 {
                continue;
            }
            for &qi in selected {
                let mut terms: Vec<(VarId, f64)> = problem
                    .surviving(f, qi)
                    .iter()
                    .map(|&t| (a_vars[t.index()], 1.0))
                    .collect();
                terms.push((phi, d));
                let row = lp.add_constraint(terms, Sense::Ge, d);
                cov_rows.push((f, qi, row));
            }
        }

        let key = problem.structure_key() ^ CACHE_SALT_HEURISTIC ^ hash_delta(delta);
        let sol = self.warm_solve(&lp, key);
        assert_eq!(
            sol.status,
            SolveStatus::Optimal,
            "subproblem must be solvable (Φ = 1 is always feasible)"
        );
        self.stats.subproblem_ms += ms_since(t0);
        SubproblemResult {
            allocation: a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
            phi: sol.value(phi).max(0.0),
            cap_duals: cap_rows.iter().map(|&r| sol.duals[r.index()]).collect(),
            cov_duals: cov_rows
                .iter()
                .map(|&(f, qi, r)| (f, qi, sol.duals[r.index()].max(0.0)))
                .collect(),
        }
    }

    fn heuristic(&mut self, beta: f64) -> TeSolution {
        let delta = greedy_delta(self.problem, beta);
        let sp = self.subproblem(&delta);
        let allocation = self.polish(&delta, sp.phi);
        TeSolution { allocation, max_loss: sp.phi, delta, lp_solves: 2, benders_iters: 0 }
    }

    /// Lexicographic second pass: with `Φ` fixed at its optimum, choose
    /// among the optimal allocations the one that maximizes the
    /// probability-weighted delivered fraction across the no-failure
    /// scenario and the selected failure scenarios, then fills spare
    /// capacity.
    ///
    /// The min-Φ LP alone returns a *minimal* vertex — allocations
    /// exactly meeting `(1 − Φ)d` — which would make flows artificially
    /// lossy even in scenarios where spare capacity could cover them in
    /// full. Real TE systems hand spare capacity back to the flows;
    /// this pass models that, and because the weights are the scenario
    /// probabilities it is a direct surrogate for the availability the
    /// evaluator measures.
    fn polish(&mut self, delta: &[Vec<usize>], phi: f64) -> Vec<f64> {
        let t0 = Instant::now();
        let problem = self.problem;
        let cfg = problem.config();
        let n_tunnels = problem.tunnels.len();
        let total_demand: f64 = problem.flows.iter().map(|f| f.demand_gbps).sum();
        let mean_demand = (total_demand / problem.flows.len().max(1) as f64).max(1e-9);
        let p0 = problem.scenarios.scenarios[0].prob.max(1e-12);
        let mut lp = LinearProgram::new();
        // Each allocation is capped by its tunnel's bottleneck group
        // capacity. The capacity rows already imply this, so the
        // optimum is untouched — but stating it as a variable bound
        // makes every negative-cost column bounded, which lets the
        // sparse engine cold-start with a single dual simplex pass
        // instead of a two-phase primal solve.
        let mut bottleneck = vec![f64::INFINITY; n_tunnels];
        for t in problem.tunnels.tunnels() {
            for g in problem.groups.groups_of_path(&t.path.links) {
                let b = &mut bottleneck[t.id.index()];
                *b = b.min(problem.groups.capacity(g));
            }
        }
        let a_vars: Vec<VarId> = bottleneck
            .iter()
            .map(|&cap| {
                if cap.is_finite() {
                    lp.var_bounded(0.0, cap, -1e-6)
                } else {
                    lp.var_nonneg(-1e-6)
                }
            })
            .collect();
        // Fairness tie-break on the worst no-failure delivered fraction.
        let z = lp.var_unit(-0.01 * total_demand.max(1.0));

        // Capacity rows.
        let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
        for t in problem.tunnels.tunnels() {
            for g in problem.groups.groups_of_path(&t.path.links) {
                group_terms[g].push((a_vars[t.id.index()], 1.0));
            }
        }
        for (g, terms) in group_terms.into_iter().enumerate() {
            lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g));
        }
        // Coverage rows with Φ frozen (small slack absorbs LP
        // round-off), plus delivery vars s_{f,q} ≤ min(d_f, Σ surv a).
        let phi_slack = phi + cfg.polish_slack;
        for (f, selected) in delta.iter().enumerate() {
            let d = problem.flows[f].demand_gbps;
            if d <= 0.0 {
                continue;
            }
            // Pick q0 plus the most probable selected failure scenarios.
            let mut with_delivery: Vec<usize> =
                selected.iter().copied().filter(|&q| q != 0).collect();
            with_delivery.sort_by(|&a, &b| {
                problem.scenarios.scenarios[b]
                    .prob
                    .partial_cmp(&problem.scenarios.scenarios[a].prob)
                    .expect("finite")
            });
            with_delivery.truncate(cfg.polish_scenarios_per_flow);
            for &qi in selected {
                let cover: Vec<(VarId, f64)> = problem
                    .surviving(f, qi)
                    .iter()
                    .map(|&t| (a_vars[t.index()], 1.0))
                    .collect();
                lp.add_constraint(cover, Sense::Ge, d * (1.0 - phi_slack));
            }
            for &qi in std::iter::once(&0usize).chain(&with_delivery) {
                let weight = if qi == 0 {
                    1.0
                } else {
                    (problem.scenarios.scenarios[qi].prob / p0).min(1.0)
                };
                let s = lp.var_bounded(0.0, d, -weight * mean_demand / d);
                let mut terms: Vec<(VarId, f64)> = problem
                    .surviving(f, qi)
                    .iter()
                    .map(|&t| (a_vars[t.index()], 1.0))
                    .collect();
                terms.push((s, -1.0));
                lp.add_constraint(terms, Sense::Ge, 0.0);
                if qi == 0 {
                    lp.add_constraint(vec![(s, 1.0), (z, -d)], Sense::Ge, 0.0);
                }
            }
        }
        let key = problem.structure_key() ^ CACHE_SALT_POLISH ^ hash_delta(delta);
        let sol = self.warm_solve(&lp, key);
        self.stats.polish_ms += ms_since(t0);
        if sol.status != SolveStatus::Optimal {
            // Extremely defensive: fall back to the primary solution
            // shape by re-solving the plain subproblem.
            return self.subproblem(delta).allocation;
        }
        a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect()
    }
}

/// One Benders optimality cut (Eqn 11): `Φ ≥ const + Σ w_{f,q} δ_{f,q}`.
struct Cut {
    constant: f64,
    /// (flow, scenario, weight ≥ 0).
    weights: Vec<(usize, usize, f64)>,
}

/// The materialized Benders subproblem LP: coverage rows exist for
/// *every* (flow, scenario 0 ∪ affecting) pair, and a selection δ is
/// imposed purely through the right-hand side (`d` when selected, `0`
/// — a vacuous row, since all variables are non-negative — when not).
/// Because iterations only move the rhs, every solve after the first
/// is a dual-simplex re-solve on the live tableau instead of a cold
/// two-phase run.
struct BendersLp {
    lp: LinearProgram,
    a_vars: Vec<VarId>,
    phi: VarId,
    cap_rows: Vec<ConstraintId>,
    /// (flow, scenario, row, demand) for every materialized row.
    cov_rows: Vec<(usize, usize, ConstraintId, f64)>,
}

fn build_benders_lp(problem: &TeProblem<'_>) -> BendersLp {
    let n_tunnels = problem.tunnels.len();
    let mut lp = LinearProgram::new();
    let a_vars: Vec<VarId> =
        (0..n_tunnels).map(|_| lp.var_nonneg(0.0)).collect();
    let phi = lp.var_nonneg(1.0);

    let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
    for t in problem.tunnels.tunnels() {
        for g in problem.groups.groups_of_path(&t.path.links) {
            group_terms[g].push((a_vars[t.id.index()], 1.0));
        }
    }
    let mut cap_rows = Vec::with_capacity(problem.groups.len());
    for (g, terms) in group_terms.into_iter().enumerate() {
        cap_rows.push(lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g)));
    }

    let mut cov_rows = Vec::new();
    for f in 0..problem.flows.len() {
        let d = problem.flows[f].demand_gbps;
        if d <= 0.0 {
            continue;
        }
        let mut rows = vec![0usize];
        rows.extend_from_slice(problem.affecting(f));
        for qi in rows {
            let mut terms: Vec<(VarId, f64)> = problem
                .surviving(f, qi)
                .iter()
                .map(|&t| (a_vars[t.index()], 1.0))
                .collect();
            terms.push((phi, d));
            let row = lp.add_constraint(terms, Sense::Ge, d);
            cov_rows.push((f, qi, row, d));
        }
    }
    BendersLp { lp, a_vars, phi, cap_rows, cov_rows }
}

fn set_benders_rhs(b: &mut BendersLp, delta: &[Vec<usize>]) {
    for &(f, qi, row, d) in &b.cov_rows {
        let rhs = if delta[f].contains(&qi) { d } else { 0.0 };
        b.lp.set_rhs(row, rhs);
    }
}

fn extract_subproblem(sol: &prete_lp::Solution, b: &BendersLp) -> SubproblemResult {
    SubproblemResult {
        allocation: b.a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        phi: sol.value(b.phi).max(0.0),
        cap_duals: b.cap_rows.iter().map(|&r| sol.duals[r.index()]).collect(),
        cov_duals: b
            .cov_rows
            .iter()
            .map(|&(f, qi, r, _)| (f, qi, sol.duals[r.index()].max(0.0)))
            .collect(),
    }
}

impl SolveCtx<'_, '_, '_> {
    fn benders(&mut self, beta: f64, eps: f64, max_iters: usize) -> TeSolution {
        let problem = self.problem;
        // Initialization (Algorithm 2 lines 2–4): δ = 1 for all rows we
        // materialize (scenario 0 + affecting), UB = 1, LB = 0, C = ∅.
        let all_delta: Vec<Vec<usize>> = (0..problem.flows.len())
            .map(|f| {
                let mut v = vec![0usize];
                v.extend_from_slice(problem.affecting(f));
                v
            })
            .collect();
        let mut b = build_benders_lp(problem);
        let key = problem.structure_key() ^ CACHE_SALT_BENDERS;
        let mut ws = WarmSimplex::new(self.simplex_opts());

        let mut delta = all_delta.clone();
        let mut ub = f64::INFINITY;
        let mut lb: f64 = 0.0;
        let mut cuts: Vec<Cut> = Vec::new();
        let mut best: Option<(f64, Vec<Vec<usize>>)> = None;
        let mut lp_solves = 0usize;
        let mut iters = 0usize;

        while iters < max_iters {
            iters += 1;
            // Step 1: subproblem with fixed δ. The first iteration is a
            // (possibly cache-seeded) full solve; later ones are
            // rhs-only dual-simplex moves on the live tableau.
            let t0 = Instant::now();
            set_benders_rhs(&mut b, &delta);
            let sol = if iters == 1 {
                let warm = self.cache.as_mut().and_then(|c| c.get(key)).cloned();
                let (sol, used) = ws.solve_from(&b.lp, warm.as_ref());
                if self.cache.is_some() {
                    if used {
                        self.stats.warm_hits += 1;
                        self.obs.event_with("solver.warm-start", || format!("hit key={key:#x}"));
                    } else {
                        self.stats.warm_misses += 1;
                        self.obs.event_with("solver.warm-start", || format!("miss key={key:#x}"));
                    }
                }
                sol
            } else {
                let (sol, live) = ws.resolve_rhs(&b.lp);
                if live {
                    self.stats.rhs_resolves += 1;
                }
                sol
            };
            self.stats.lp_solves += 1;
            self.stats.subproblem_ms += ms_since(t0);
            assert_eq!(
                sol.status,
                SolveStatus::Optimal,
                "subproblem must be solvable (Φ = 1 is always feasible)"
            );
            let sp = extract_subproblem(&sol, &b);
            lp_solves += 1;
            if sp.phi < ub {
                ub = sp.phi;
                best = Some((sp.phi, delta.clone()));
            }
            // Optimality cut: Φ ≥ Σ_g y_g c_g + Σ v_{f,q} d_f δ_{f,q}.
            let constant: f64 = sp
                .cap_duals
                .iter()
                .enumerate()
                .map(|(g, &y)| y * problem.groups.capacity(g))
                .sum();
            let weights: Vec<(usize, usize, f64)> = sp
                .cov_duals
                .iter()
                .filter(|&&(_, _, v)| v > 1e-12)
                .map(|&(f, qi, v)| (f, qi, v * problem.flows[f].demand_gbps))
                .collect();
            cuts.push(Cut { constant, weights });
            self.stats.cuts_added += 1;
            self.obs.event_with("solver.benders-iteration", || {
                format!("iter={iters} ub={ub:.6} lb={lb:.6} cuts={}", cuts.len())
            });
            if ub - lb <= eps {
                break;
            }
            // Step 2: master problem.
            let t1 = Instant::now();
            let (new_delta, master_obj, nodes) =
                solve_master(problem, beta, &cuts, &all_delta, self.simplex_opts());
            self.stats.master_ms += ms_since(t1);
            self.stats.mip_nodes += nodes;
            self.stats.lp_solves += 1;
            lp_solves += 1;
            lb = lb.max(master_obj);
            if ub - lb <= eps {
                break;
            }
            delta = new_delta;
        }
        self.stats.pivots += ws.pivots();
        let engine = ws.engine_stats();
        self.stats.refactorizations += engine.refactorizations;
        self.stats.etas += engine.etas;
        self.stats.fill_in += engine.fill_in;
        if engine.rollbacks > 0 {
            self.stats.ft_rollbacks += engine.rollbacks;
            self.obs.event_with("solver.ft-rollback", || {
                format!("{} pivot(s) rolled back in benders loop", engine.rollbacks)
            });
        }
        if engine.dense_fallback {
            self.stats.dense_fallbacks += 1;
            self.obs.event("solver.dense-fallback", "singular sparse factorization in benders loop");
        }
        self.stats.benders_iters = iters;
        if let Some(basis) = ws.basis() {
            if let Some(c) = self.cache.as_mut() {
                c.put(key, basis);
            }
        }
        let (phi, delta) = best.expect("at least one subproblem solved");
        let allocation = self.polish(&delta, phi);
        TeSolution {
            allocation,
            max_loss: phi,
            delta,
            lp_solves: lp_solves + 1,
            benders_iters: iters,
        }
    }
}

/// Solves the Benders master: min Φ s.t. the availability knapsack per
/// flow and all optimality cuts, δ binary. Returns the new selection,
/// the master objective (a lower bound), and the B&B node count.
fn solve_master(
    problem: &TeProblem<'_>,
    beta: f64,
    cuts: &[Cut],
    all_delta: &[Vec<usize>],
    simplex: SimplexOptions,
) -> (Vec<Vec<usize>>, f64, usize) {
    let scen = &problem.scenarios.scenarios;
    let mut lp = LinearProgram::new();
    let phi = lp.var_unit(1.0);
    // δ variables for (flow, materialized scenario).
    let mut dvars: Vec<Vec<VarId>> = Vec::with_capacity(all_delta.len());
    for (f, qs) in all_delta.iter().enumerate() {
        let vars: Vec<VarId> = qs.iter().map(|_| lp.var_unit(0.0)).collect();
        // Knapsack (constraint 5): Σ δ p + unaffecting mass ≥ β,
        // clamped to the attainable mass when enumeration fell short.
        let attainable: f64 = qs.iter().map(|&qi| scen[qi].prob).sum();
        let rhs = (beta - problem.unaffecting_mass(f)).min(attainable * (1.0 - 1e-12));
        let terms: Vec<(VarId, f64)> = vars
            .iter()
            .zip(qs)
            .map(|(&v, &qi)| (v, scen[qi].prob))
            .collect();
        lp.add_constraint(terms, Sense::Ge, rhs);
        dvars.push(vars);
    }
    // Cuts: Φ - Σ w δ ≥ const.
    for cut in cuts {
        let mut terms = vec![(phi, 1.0)];
        for &(f, qi, w) in &cut.weights {
            let pos = all_delta[f].iter().position(|&x| x == qi).expect("cut row exists");
            terms.push((dvars[f][pos], -w));
        }
        lp.add_constraint(terms, Sense::Ge, cut.constant);
    }
    let binaries: Vec<VarId> = dvars.iter().flatten().copied().collect();
    let opts = MipOptions { max_nodes: 4000, simplex, ..Default::default() };
    let r = solve_mip(&lp, &binaries, opts);
    let x = if r.status == MipStatus::Optimal || r.has_incumbent() {
        r.x.clone()
    } else {
        // Fallback: select everything (always feasible).
        let mut x = vec![0.0; lp.num_vars()];
        for v in &binaries {
            x[v.index()] = 1.0;
        }
        x
    };
    let delta: Vec<Vec<usize>> = all_delta
        .iter()
        .zip(&dvars)
        .map(|(qs, vars)| {
            qs.iter()
                .zip(vars)
                .filter(|&(_, &v)| x[v.index()] > 0.5)
                .map(|(&qi, _)| qi)
                .collect()
        })
        .collect();
    let obj = if r.has_incumbent() { r.objective } else { 0.0 };
    (delta, obj, r.nodes)
}

impl SolveCtx<'_, '_, '_> {
    /// Full MIP (2)–(8) via branch-and-bound: exact reference for small
    /// instances, surfacing budget exhaustion and infeasibility instead
    /// of panicking.
    fn bnb(&mut self, beta: f64, opts: MipOptions) -> Result<TeSolution, TeSolveError> {
        let t0 = Instant::now();
        let problem = self.problem;
        let scen = &problem.scenarios.scenarios;
        let n_tunnels = problem.tunnels.len();
        let mut lp = LinearProgram::new();
        let a_vars: Vec<VarId> =
            (0..n_tunnels).map(|_| lp.var_nonneg(0.0)).collect();
        let phi = lp.var_unit(1.0);
        // Capacity.
        let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
        for t in problem.tunnels.tunnels() {
            for g in problem.groups.groups_of_path(&t.path.links) {
                group_terms[g].push((a_vars[t.id.index()], 1.0));
            }
        }
        for (g, terms) in group_terms.into_iter().enumerate() {
            lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g));
        }
        // δ vars + coverage + knapsack.
        let mut dvars: Vec<Vec<(usize, VarId)>> = Vec::new();
        for f in 0..problem.flows.len() {
            let d = problem.flows[f].demand_gbps;
            let mut rows = vec![0usize];
            rows.extend_from_slice(problem.affecting(f));
            let vars: Vec<(usize, VarId)> = rows
                .iter()
                .map(|&qi| (qi, lp.var_unit(0.0)))
                .collect();
            for &(qi, dv) in &vars {
                // Σ surv a + d Φ − d δ ≥ 0.
                let mut terms: Vec<(VarId, f64)> = problem
                    .surviving(f, qi)
                    .iter()
                    .map(|&t| (a_vars[t.index()], 1.0))
                    .collect();
                terms.push((phi, d));
                terms.push((dv, -d));
                lp.add_constraint(terms, Sense::Ge, 0.0);
            }
            let attainable: f64 = vars.iter().map(|&(qi, _)| scen[qi].prob).sum();
            let rhs = (beta - problem.unaffecting_mass(f)).min(attainable * (1.0 - 1e-12));
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&(qi, v)| (v, scen[qi].prob)).collect();
            lp.add_constraint(terms, Sense::Ge, rhs);
            dvars.push(vars);
        }
        let binaries: Vec<VarId> = dvars.iter().flatten().map(|&(_, v)| v).collect();
        let r = solve_mip(&lp, &binaries, opts);
        self.stats.master_ms += ms_since(t0);
        self.stats.mip_nodes += r.nodes;
        self.stats.lp_solves += r.nodes;
        match r.status {
            MipStatus::Optimal => {}
            MipStatus::Infeasible => return Err(TeSolveError::Infeasible),
            // Φ ∈ [0, 1] bounds the objective, so Unbounded only arises
            // from a malformed program — report it as infeasibility
            // rather than aborting the controller.
            MipStatus::Unbounded => return Err(TeSolveError::Infeasible),
            MipStatus::NodeLimit => {
                return Err(TeSolveError::BudgetExceeded { nodes: r.nodes })
            }
        }
        let delta: Vec<Vec<usize>> = dvars
            .iter()
            .map(|vars| {
                vars.iter()
                    .filter(|&&(_, v)| r.x[v.index()] > 0.5)
                    .map(|&(qi, _)| qi)
                    .collect()
            })
            .collect();
        let max_loss = r.x[phi.index()].max(0.0);
        let allocation = self.polish(&delta, max_loss);
        Ok(TeSolution { allocation, max_loss, delta, lp_solves: r.nodes + 1, benders_iters: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{triangle, triangle_flows, TRIANGLE_PROBS};
    use crate::scenario::ScenarioSet;
    use prete_topology::TunnelSet;

    fn triangle_problem(
        probs: &[f64],
    ) -> (prete_topology::Network, Vec<Flow>, TunnelSet, ScenarioSet) {
        let net = triangle();
        let flows = triangle_flows();
        let tunnels = TunnelSet::initialize(&net, &flows, 2);
        let scenarios = ScenarioSet::enumerate(probs, 2, 0.0);
        (net, flows, tunnels, scenarios)
    }

    fn run(p: &TeProblem<'_>, beta: f64, method: SolveMethod) -> TeSolution {
        TeSolver::new(p).beta(beta).method(method).solve().expect("solvable within budget")
    }

    #[test]
    fn triangle_zero_loss_at_99() {
        // Per-flow β = 99 % is satisfiable at zero loss — but only if
        // the two flows exclude *different* failure scenarios (flow
        // s1→s2 drops the s1s3 cut, flow s1→s3 drops the s1s2 cut;
        // protecting both against the same cut oversubscribes the
        // detour link). The greedy heuristic picks by probability alone
        // and lands on Φ = 0.5; the exact solvers find Φ = 0. This is
        // precisely why the paper solves the MIP with Benders instead
        // of a one-shot selection.
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        for method in [SolveMethod::benders(), SolveMethod::BranchAndBound] {
            let sol = run(&p, 0.99, method);
            assert!(sol.max_loss < 1e-6, "{method:?}: Φ = {}", sol.max_loss);
            // No-failure delivery is full demand for both flows.
            assert!((sol.delivered(&p, 0, 0) - 10.0).abs() < 1e-6);
            assert!((sol.delivered(&p, 1, 0) - 10.0).abs() < 1e-6);
        }
        // The heuristic stays a valid upper bound.
        let h = run(&p, 0.99, SolveMethod::Heuristic);
        assert!(h.max_loss >= -1e-9);
    }

    #[test]
    fn solution_round_trips_through_json() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = run(&p, 0.99, SolveMethod::Heuristic);
        let json = serde_json::to_string(&sol).expect("serialize solution");
        let back: TeSolution = serde_json::from_str(&json).expect("parse solution");
        assert_eq!(back, sol);
    }

    #[test]
    fn triangle_protecting_all_singles_costs_capacity() {
        // Force protection against every single failure (β close to 1):
        // flow s1→s2 must survive the loss of fiber 0, which leaves only
        // the 2-hop detour — but the detour shares links with flow
        // s1→s3's protection, so Φ > 0 at these demands.
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = run(&p, 0.999999, SolveMethod::BranchAndBound);
        assert!(sol.max_loss > 0.2, "Φ = {}", sol.max_loss);
        // All three solvers agree on the optimum.
        let h = run(&p, 0.999999, SolveMethod::Heuristic);
        let b = run(&p, 0.999999, SolveMethod::benders());
        assert!((h.max_loss - sol.max_loss).abs() < 1e-4, "heuristic {}", h.max_loss);
        assert!((b.max_loss - sol.max_loss).abs() < 1e-4, "benders {}", b.max_loss);
    }

    #[test]
    fn benders_matches_bnb_on_asymmetric_probs() {
        // Probabilities where greedy-by-probability is not trivially
        // optimal: one cheap-to-protect scenario is rare, one expensive
        // scenario is common.
        let (net, flows, tunnels, scenarios) = triangle_problem(&[0.02, 0.001, 0.02]);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        for beta in [0.97, 0.99, 0.995] {
            let exact = run(&p, beta, SolveMethod::BranchAndBound);
            let bend = run(&p, beta, SolveMethod::benders());
            assert!(
                (exact.max_loss - bend.max_loss).abs() < 1e-3,
                "beta {beta}: exact {} vs benders {}",
                exact.max_loss,
                bend.max_loss
            );
            // Heuristic is an upper bound (feasible but maybe
            // suboptimal).
            let heur = run(&p, beta, SolveMethod::Heuristic);
            assert!(heur.max_loss >= exact.max_loss - 1e-6);
        }
    }

    #[test]
    fn allocation_respects_capacity() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = run(&p, 0.999999, SolveMethod::Heuristic);
        // Recompute per-group load.
        let mut load = vec![0.0; p.groups.len()];
        for t in tunnels.tunnels() {
            for g in p.groups.groups_of_path(&t.path.links) {
                load[g] += sol.allocation[t.id.index()];
            }
        }
        for (g, &l) in load.iter().enumerate() {
            assert!(l <= p.groups.capacity(g) + 1e-6, "group {g}: {l}");
        }
    }

    #[test]
    fn oracle_certainty_forces_protection() {
        // Fiber 0 (s1s2) will fail for sure — the Figure 3(c) setting.
        // Flow s1→s2 must detour via s3 and flow s1→s3's direct link is
        // shared with that detour, so the 20 units of demand compress
        // to 10 of delivery: the optimal max loss is exactly 0.5 and
        // total throughput 10, matching the paper's oracle outcome.
        let (net, flows, tunnels, _) = triangle_problem(&TRIANGLE_PROBS);
        let scenarios = ScenarioSet::enumerate(&[1.0, 0.0, 0.0], 1, 0.0);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = run(&p, 0.99, SolveMethod::BranchAndBound);
        assert!((sol.max_loss - 0.5).abs() < 1e-6, "Φ = {}", sol.max_loss);
        // Every scenario cuts fiber 0; total delivery is 10 units.
        for (qi, _) in scenarios.scenarios.iter().enumerate() {
            let total = sol.delivered(&p, 0, qi) + sol.delivered(&p, 1, qi);
            assert!((total - 10.0).abs() < 1e-5, "total {total}");
        }
    }

    #[test]
    fn loss_and_delivered_consistency() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = run(&p, 0.99, SolveMethod::Heuristic);
        for (f, flow) in flows.iter().enumerate() {
            for q in 0..scenarios.len() {
                let l = sol.loss(&p, f, q);
                let d = sol.delivered(&p, f, q);
                assert!((0.0..=1.0).contains(&l));
                assert!((d - (1.0 - l) * flow.demand_gbps).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn affecting_sets_are_correct() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        // Flow 0 (s1→s2) has tunnels s1s2 and s1s3s2: every single-cut
        // scenario kills one of them.
        for (f, flow) in flows.iter().enumerate() {
            for &qi in p.affecting(f) {
                let all = tunnels.of_flow(flow.id).len();
                assert!(p.surviving(f, qi).len() < all);
            }
        }
    }

    #[test]
    fn recorder_captures_solve_span_and_counters() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let rec = Recorder::deterministic();
        let mut cache = BasisCache::new();
        let (_, stats) = TeSolver::new(&p)
            .beta(0.99)
            .method(SolveMethod::benders())
            .threads(1)
            .warm_cache(&mut cache)
            .recorder(&rec)
            .solve_with_stats()
            .unwrap();
        let (_, s2) = TeSolver::new(&p)
            .beta(0.99)
            .method(SolveMethod::benders())
            .threads(1)
            .warm_cache(&mut cache)
            .recorder(&rec)
            .solve_with_stats()
            .unwrap();
        let r = rec.report();
        // One "solve" span per solve, feeding the span histogram.
        assert_eq!(r.spans.iter().filter(|s| s.name == "solve").count(), 2);
        assert_eq!(r.histograms["span.solve"].count, 2);
        // Published counters aggregate the per-solve stats.
        assert_eq!(
            r.counters["solver.lp_solves"],
            (stats.lp_solves + s2.lp_solves) as u64
        );
        assert_eq!(
            r.counters["solver.benders_iters"],
            (stats.benders_iters + s2.benders_iters) as u64
        );
        assert_eq!(r.counters["solver.warm_hits"], (stats.warm_hits + s2.warm_hits) as u64);
        // Events fired for Benders iterations, and warm starts once the
        // cache was primed.
        assert!(!r.events_of_kind("solver.benders-iteration").is_empty());
        assert_eq!(
            r.events_of_kind("solver.warm-start").len(),
            (stats.warm_hits + stats.warm_misses + s2.warm_hits + s2.warm_misses),
        );
        // Deterministic reports carry no machine wall times.
        assert!(!r.histograms.contains_key("solver.total_ms"));
    }

    #[test]
    fn parallel_solves_are_bit_identical_to_serial() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        for method in [SolveMethod::Heuristic, SolveMethod::benders(), SolveMethod::BranchAndBound]
        {
            let serial = TeSolver::new(&p).beta(0.99).method(method).threads(1).solve().unwrap();
            for threads in [2, 4, 8] {
                let par = TeSolver::new(&p)
                    .beta(0.99)
                    .method(method)
                    .threads(threads)
                    .solve()
                    .unwrap();
                let sb: Vec<u64> = serial.allocation.iter().map(|a| a.to_bits()).collect();
                let pb: Vec<u64> = par.allocation.iter().map(|a| a.to_bits()).collect();
                assert_eq!(sb, pb, "{method:?} @ {threads} threads");
                assert_eq!(serial.max_loss.to_bits(), par.max_loss.to_bits());
                assert_eq!(serial.delta, par.delta);
            }
        }
    }

    #[test]
    fn warm_cache_reuse_keeps_solutions_identical() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let cold = TeSolver::new(&p).beta(0.99).threads(1).solve().unwrap();

        let mut cache = BasisCache::new();
        let (first, s1) = TeSolver::new(&p)
            .beta(0.99)
            .threads(1)
            .warm_cache(&mut cache)
            .solve_with_stats()
            .unwrap();
        assert_eq!(s1.warm_hits, 0, "empty cache cannot hit");
        assert!(!cache.is_empty(), "optimal bases were saved");
        let (second, s2) = TeSolver::new(&p)
            .beta(0.99)
            .threads(1)
            .warm_cache(&mut cache)
            .solve_with_stats()
            .unwrap();
        assert!(s2.warm_hits > 0, "second solve should restore a cached basis");
        for (a, b) in [(&cold, &first), (&first, &second)] {
            assert_eq!(a.allocation, b.allocation);
            assert_eq!(a.max_loss.to_bits(), b.max_loss.to_bits());
        }
    }

    #[test]
    fn benders_stats_count_work_units() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let (_, stats) = TeSolver::new(&p)
            .beta(0.99)
            .method(SolveMethod::benders())
            .threads(1)
            .solve_with_stats()
            .unwrap();
        assert!(stats.benders_iters > 0);
        assert_eq!(stats.cuts_added, stats.benders_iters);
        assert!(stats.lp_solves > 0);
        assert!(stats.pivots > 0);
        if stats.benders_iters > 1 {
            assert!(stats.rhs_resolves > 0, "later iterations re-solve the live tableau");
        }
        // Equality ignores wall-clock: two runs of the same work compare
        // equal even though their timings differ.
        let (_, again) = TeSolver::new(&p)
            .beta(0.99)
            .method(SolveMethod::benders())
            .threads(1)
            .solve_with_stats()
            .unwrap();
        assert_eq!(stats, again);
        // merge() accumulates work units.
        let mut merged = stats.clone();
        merged.merge(&again);
        assert_eq!(merged.lp_solves, stats.lp_solves * 2);
        assert_eq!(merged.threads, 1);
    }

    #[test]
    fn solver_stats_serialize_every_field() {
        // The vendored serde is one-way (no deserializer), so the
        // round-trip check is on the JSON text: every field present
        // with the value it was set to.
        let stats = SolverStats {
            total_ms: 12.5,
            subproblem_ms: 7.25,
            master_ms: 3.0,
            polish_ms: 1.5,
            lp_solves: 4,
            pivots: 321,
            benders_iters: 6,
            cuts_added: 6,
            mip_nodes: 9,
            warm_hits: 2,
            warm_misses: 1,
            rhs_resolves: 5,
            cache_evictions: 3,
            refactorizations: 11,
            etas: 57,
            fill_in: 204,
            ft_rollbacks: 2,
            dense_fallbacks: 1,
            threads: 8,
            pricing: Pricing::Devex,
            eta_update: EtaUpdate::ForrestTomlin,
            cold_start: ColdStart::Auto,
        };
        let json = serde_json::to_string(&stats).unwrap();
        for field in [
            r#""total_ms":12.5"#,
            r#""subproblem_ms":7.25"#,
            r#""master_ms":3.0"#,
            r#""polish_ms":1.5"#,
            r#""lp_solves":4"#,
            r#""pivots":321"#,
            r#""benders_iters":6"#,
            r#""cuts_added":6"#,
            r#""mip_nodes":9"#,
            r#""warm_hits":2"#,
            r#""warm_misses":1"#,
            r#""rhs_resolves":5"#,
            r#""cache_evictions":3"#,
            r#""refactorizations":11"#,
            r#""etas":57"#,
            r#""fill_in":204"#,
            r#""ft_rollbacks":2"#,
            r#""dense_fallbacks":1"#,
            r#""threads":8"#,
            r#""pricing":"Devex""#,
            r#""eta_update":"ForrestTomlin""#,
            r#""cold_start":"Auto""#,
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }

    #[test]
    fn solver_stats_equality_is_work_units_only() {
        let base = SolverStats {
            lp_solves: 3,
            pivots: 100,
            benders_iters: 2,
            cuts_added: 2,
            warm_hits: 1,
            warm_misses: 1,
            rhs_resolves: 1,
            ..SolverStats::default()
        };
        // Different machine: wall times and thread count differ, work
        // units agree — still equal.
        let other_machine = SolverStats {
            total_ms: 999.0,
            subproblem_ms: 500.0,
            master_ms: 400.0,
            polish_ms: 99.0,
            threads: 32,
            ..base.clone()
        };
        assert_eq!(base, other_machine);
        // Any differing work unit breaks equality.
        assert_ne!(base, SolverStats { pivots: 101, ..base.clone() });
        assert_ne!(base, SolverStats { warm_hits: 2, ..base.clone() });
        assert_ne!(base, SolverStats { rhs_resolves: 0, ..base.clone() });
    }

    #[test]
    fn bounded_cache_evictions_surface_in_stats() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let solve = |cache: &mut BasisCache| {
            TeSolver::new(&p)
                .beta(0.99)
                .method(SolveMethod::benders())
                .threads(1)
                .warm_cache(cache)
                .solve_with_stats()
                .unwrap()
                .1
        };
        // Unbounded baseline: no evictions, and the solve wants more
        // than one cached basis (one per Benders subproblem family).
        let mut unbounded = BasisCache::new();
        let base = solve(&mut unbounded);
        assert_eq!(base.cache_evictions, 0);
        let keys = unbounded.len();
        assert!(keys > 1, "expected multiple cached bases, got {keys}");
        // Capacity 1 forces LRU churn; the delta lands in the stats.
        let mut bounded = BasisCache::with_capacity(1);
        let stats = solve(&mut bounded);
        assert_eq!(stats.cache_evictions, bounded.evictions());
        assert!(stats.cache_evictions >= keys - 1);
        assert!(bounded.len() <= 1);
        // Eviction counts are work units: bit-identical across runs.
        let mut again = BasisCache::with_capacity(1);
        assert_eq!(solve(&mut again), stats);
    }

    #[test]
    fn stats_accumulate_across_warm_epochs() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let epochs = 4;
        let run_epochs = || {
            let mut cache = BasisCache::new();
            let mut acc = SolverStats::default();
            let mut per_epoch = Vec::new();
            for _ in 0..epochs {
                let (_, s) = TeSolver::new(&p)
                    .beta(0.99)
                    .threads(1)
                    .warm_cache(&mut cache)
                    .solve_with_stats()
                    .unwrap();
                acc.merge(&s);
                per_epoch.push(s);
            }
            (acc, per_epoch)
        };
        let (acc, per_epoch) = run_epochs();
        // Accumulation is exact: the merged counters are the sums.
        assert_eq!(acc.lp_solves, per_epoch.iter().map(|s| s.lp_solves).sum::<usize>());
        assert_eq!(acc.pivots, per_epoch.iter().map(|s| s.pivots).sum::<usize>());
        assert_eq!(
            acc.warm_hits + acc.warm_misses,
            per_epoch.iter().map(|s| s.warm_hits + s.warm_misses).sum::<usize>()
        );
        // Epoch 1 misses cold, epochs 2.. restore the saved basis.
        assert_eq!(per_epoch[0].warm_hits, 0);
        assert!(per_epoch[1..].iter().all(|s| s.warm_hits > 0));
        assert!(acc.warm_hit_rate() > 0.0 && acc.warm_hit_rate() < 1.0);
        // Deterministic: a second pass over the same epochs merges to
        // the same work-unit totals.
        let (acc2, _) = run_epochs();
        assert_eq!(acc, acc2);
    }

    #[test]
    fn problem_config_precompute_parallelism_is_invisible() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let serial = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let par = TeProblem::with_config(
            &net,
            &flows,
            &tunnels,
            &scenarios,
            ProblemConfig { precompute_threads: 4, ..ProblemConfig::default() },
        );
        assert_eq!(serial.structure_key(), par.structure_key());
        for f in 0..flows.len() {
            assert_eq!(serial.affecting(f), par.affecting(f));
            for q in 0..scenarios.len() {
                assert_eq!(serial.surviving(f, q), par.surviving(f, q));
            }
        }
        let a = run(&serial, 0.99, SolveMethod::Heuristic);
        let b = run(&par, 0.99, SolveMethod::Heuristic);
        assert_eq!(a.allocation, b.allocation);
    }
}
