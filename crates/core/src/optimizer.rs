//! The PreTE TE optimization (2)–(8) and its solvers.
//!
//! ## Exact reformulation
//!
//! The paper's program carries per-(flow, scenario) loss variables
//! `l_{f,q}`. For any fixed scenario selection `δ`, the minimal
//! feasible `l_{f,q}` is `max(0, 1 − Σ_t a_{f,t}/d_f)` and constraints
//! (4) + (6) collapse to the single *coverage* row
//!
//! ```text
//!     Σ_{t ∈ T_{f,q} ∪ Y_{f,q}^s} a_{f,t} + d_f·Φ  ≥  d_f·δ_{f,q}
//! ```
//!
//! with `δ` appearing only on the right-hand side — exactly the shape
//! Benders decomposition wants (Appendix A.4: the subproblem sizes are
//! "independent of the number of δ to be addressed"). Rows are emitted
//! only for the no-failure scenario and the scenarios that actually
//! kill one of the flow's tunnels; an unaffecting scenario's row is
//! identical to the no-failure row and would be redundant.
//!
//! ## Solvers
//!
//! * [`SolveMethod::Heuristic`] — per flow, select scenarios greedily
//!   by decreasing probability until constraint (5) holds, then one LP.
//!   Fast; used by the large availability sweeps.
//! * [`SolveMethod::Benders`] — Algorithm 2: iterate subproblem (LP,
//!   duals → optimality cut Eqn 11) and master (small binary program)
//!   until `UB − LB ≤ ε`.
//! * [`SolveMethod::BranchAndBound`] — the full MIP via `prete-lp`,
//!   exact on small instances; the tests use it as the reference the
//!   other two must match.

use crate::capacity::CapacityGroups;
use crate::scenario::ScenarioSet;
use prete_lp::{
    solve, solve_mip, LinearProgram, MipOptions, MipStatus, Sense, SolveStatus, VarId,
};
use prete_topology::{Flow, Network, TunnelId, TunnelSet};

/// How to solve the scenario-selection MIP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveMethod {
    /// Greedy per-flow scenario selection + one LP (fast, near-optimal
    /// at WAN failure rates).
    Heuristic,
    /// Benders decomposition (Algorithm 2) with gap `eps` and at most
    /// `max_iters` iterations.
    Benders {
        /// Convergence gap `ε` on `UB − LB`.
        eps: f64,
        /// Iteration cap.
        max_iters: usize,
    },
    /// Exact branch-and-bound over the full MIP (small instances only).
    BranchAndBound,
}

impl SolveMethod {
    /// Benders with the defaults used in the evaluation (ε = 1e-4,
    /// 25 iterations).
    pub fn benders() -> Self {
        SolveMethod::Benders { eps: 1e-4, max_iters: 25 }
    }
}

/// A TE problem instance: network, flows with demands, tunnels
/// (pre-established plus any reactive ones), and the scenario set.
#[derive(Debug)]
pub struct TeProblem<'a> {
    /// The network.
    pub net: &'a Network,
    /// Flows with demands.
    pub flows: &'a [Flow],
    /// Tunnels (`T_f ∪ Y_f^s`).
    pub tunnels: &'a TunnelSet,
    /// Failure scenarios `Q_s`.
    pub scenarios: &'a ScenarioSet,
    /// Capacity trunk groups.
    pub groups: CapacityGroups,
    /// `surviving[f][q]` = tunnel ids of flow `f` alive in scenario `q`.
    surviving: Vec<Vec<Vec<TunnelId>>>,
    /// Per flow: scenario indices (≠ 0) that kill at least one tunnel.
    affecting: Vec<Vec<usize>>,
}

impl<'a> TeProblem<'a> {
    /// Builds a problem, precomputing survivals.
    pub fn new(
        net: &'a Network,
        flows: &'a [Flow],
        tunnels: &'a TunnelSet,
        scenarios: &'a ScenarioSet,
    ) -> Self {
        let groups = CapacityGroups::build(net);
        let mut surviving = Vec::with_capacity(flows.len());
        let mut affecting = Vec::with_capacity(flows.len());
        for flow in flows {
            let all = tunnels.of_flow(flow.id).to_vec();
            let mut per_q = Vec::with_capacity(scenarios.len());
            let mut aff = Vec::new();
            for (qi, q) in scenarios.scenarios.iter().enumerate() {
                let surv: Vec<TunnelId> = all
                    .iter()
                    .copied()
                    .filter(|&t| tunnels.tunnel(t).survives(net, &q.cut))
                    .collect();
                if qi != 0 && surv.len() != all.len() {
                    aff.push(qi);
                }
                per_q.push(surv);
            }
            surviving.push(per_q);
            affecting.push(aff);
        }
        Self { net, flows, tunnels, scenarios, groups, surviving, affecting }
    }

    /// Tunnels of flow `f` (by dense index) surviving scenario `q`.
    pub fn surviving(&self, f: usize, q: usize) -> &[TunnelId] {
        &self.surviving[f][q]
    }

    /// Scenario indices affecting flow `f` (excluding the no-failure
    /// scenario 0).
    pub fn affecting(&self, f: usize) -> &[usize] {
        &self.affecting[f]
    }

    /// Probability mass of scenarios that do NOT affect flow `f`
    /// (excluding scenario 0) — implicitly selected in the master.
    pub fn unaffecting_mass(&self, f: usize) -> f64 {
        let aff = &self.affecting[f];
        self.scenarios
            .scenarios
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(qi, _)| !aff.contains(qi))
            .map(|(_, q)| q.prob)
            .sum()
    }
}

/// A solved TE policy.
#[derive(Debug, Clone)]
pub struct TeSolution {
    /// Allocated bandwidth per tunnel (indexed by [`TunnelId`]).
    pub allocation: Vec<f64>,
    /// The optimized maximum β-loss `Φ` across flows.
    pub max_loss: f64,
    /// Scenario selection: `delta[f]` lists the *selected* scenario
    /// indices for flow `f` (implicitly includes unaffecting ones).
    pub delta: Vec<Vec<usize>>,
    /// Number of LP solves performed.
    pub lp_solves: usize,
    /// Benders iterations (0 for the other methods).
    pub benders_iters: usize,
}

impl TeSolution {
    /// Bandwidth delivered to flow `f` (dense index) in scenario `q`:
    /// `min(d_f, Σ surviving allocation)`.
    pub fn delivered(&self, p: &TeProblem<'_>, f: usize, q: usize) -> f64 {
        let total: f64 = p.surviving(f, q).iter().map(|&t| self.allocation[t.index()]).sum();
        total.min(p.flows[f].demand_gbps)
    }

    /// Normalized loss of flow `f` in scenario `q`.
    pub fn loss(&self, p: &TeProblem<'_>, f: usize, q: usize) -> f64 {
        let d = p.flows[f].demand_gbps;
        if d <= 0.0 {
            return 0.0;
        }
        (1.0 - self.delivered(p, f, q) / d).max(0.0)
    }
}

/// Solves the TE program for availability target `beta`.
///
/// # Panics
/// Panics if `beta` is not in (0, 1) or a flow's required probability
/// mass cannot be met by the scenario set (increase the enumeration
/// cutoff).
pub fn solve_te(problem: &TeProblem<'_>, beta: f64, method: SolveMethod) -> TeSolution {
    assert!((0.0..1.0).contains(&beta) && beta > 0.0, "beta must be in (0,1)");
    match method {
        SolveMethod::Heuristic => solve_heuristic(problem, beta),
        SolveMethod::Benders { eps, max_iters } => solve_benders(problem, beta, eps, max_iters),
        SolveMethod::BranchAndBound => solve_bnb(problem, beta),
    }
}

/// Deterministic work budget for a fallible TE solve.
///
/// Budgets are expressed in solver work units — branch-and-bound nodes
/// and Benders iterations — rather than wall-clock time, so a replay
/// with a fixed fault plan produces bit-identical results on any
/// machine. The controller converts its wall-clock deadline into work
/// units once, up front, via its latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum branch-and-bound nodes for a MIP solve.
    pub max_mip_nodes: usize,
    /// Maximum Benders master/subproblem iterations.
    pub max_benders_iters: usize,
}

impl Default for SolveBudget {
    fn default() -> Self {
        Self { max_mip_nodes: 100_000, max_benders_iters: 50 }
    }
}

impl SolveBudget {
    /// A budget that is already spent — every budgeted solve fails
    /// immediately with [`TeSolveError::BudgetExceeded`]. Used by fault
    /// injection to model a solver that cannot meet its deadline.
    pub fn exhausted() -> Self {
        Self { max_mip_nodes: 0, max_benders_iters: 0 }
    }
}

/// Why a budgeted TE solve produced no usable policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeSolveError {
    /// The solver ran out of its work budget before proving optimality.
    BudgetExceeded {
        /// Work units consumed when the budget tripped (B&B nodes, or
        /// Benders iterations for the decomposition path).
        nodes: usize,
    },
    /// The program admits no feasible point (only possible for the
    /// exact MIP; the LP relaxation used by the heuristic always admits
    /// `Φ = 1`).
    Infeasible,
}

impl std::fmt::Display for TeSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeSolveError::BudgetExceeded { nodes } => {
                write!(f, "TE solve exceeded its work budget after {nodes} nodes")
            }
            TeSolveError::Infeasible => f.write_str("TE program is infeasible"),
        }
    }
}

impl std::error::Error for TeSolveError {}

/// Solves the TE program under an explicit work budget, surfacing
/// budget exhaustion and infeasibility as errors instead of panicking.
///
/// Semantics per method:
/// * `Heuristic` — two LP solves, always feasible (`Φ = 1` is a valid
///   point), so it only fails on a fully spent budget
///   (`max_benders_iters == 0`, treated as "no solver work allowed").
/// * `Benders` — the iteration cap is the tighter of the method's own
///   `max_iters` and the budget's; a zero cap fails immediately,
///   otherwise the incumbent after the capped loop is returned.
/// * `BranchAndBound` — the exact MIP honours `max_mip_nodes` and
///   reports `BudgetExceeded` / `Infeasible` instead of asserting.
///
/// # Panics
/// Panics if `beta` is not in (0, 1) — a caller bug, not a runtime
/// fault.
pub fn try_solve_te(
    problem: &TeProblem<'_>,
    beta: f64,
    method: SolveMethod,
    budget: SolveBudget,
) -> Result<TeSolution, TeSolveError> {
    assert!((0.0..1.0).contains(&beta) && beta > 0.0, "beta must be in (0,1)");
    match method {
        SolveMethod::Heuristic => {
            if budget.max_benders_iters == 0 && budget.max_mip_nodes == 0 {
                return Err(TeSolveError::BudgetExceeded { nodes: 0 });
            }
            Ok(solve_heuristic(problem, beta))
        }
        SolveMethod::Benders { eps, max_iters } => {
            let cap = max_iters.min(budget.max_benders_iters);
            if cap == 0 {
                return Err(TeSolveError::BudgetExceeded { nodes: 0 });
            }
            Ok(solve_benders(problem, beta, eps, cap))
        }
        SolveMethod::BranchAndBound => {
            if budget.max_mip_nodes == 0 {
                return Err(TeSolveError::BudgetExceeded { nodes: 0 });
            }
            let opts = MipOptions { max_nodes: budget.max_mip_nodes, ..Default::default() };
            solve_bnb_with(problem, beta, opts)
        }
    }
}

/// Per-flow greedy δ: scenario 0 plus affecting scenarios in decreasing
/// probability until `p_0 + unaffecting + selected ≥ beta`.
fn greedy_delta(problem: &TeProblem<'_>, beta: f64) -> Vec<Vec<usize>> {
    let scen = &problem.scenarios.scenarios;
    (0..problem.flows.len())
        .map(|f| {
            let mut selected = vec![0usize];
            let mut mass = scen[0].prob + problem.unaffecting_mass(f);
            // Affecting scenarios sorted by decreasing probability.
            let mut aff: Vec<usize> = problem.affecting(f).to_vec();
            aff.sort_by(|&a, &b| {
                scen[b].prob.partial_cmp(&scen[a].prob).expect("finite").then(a.cmp(&b))
            });
            for qi in aff {
                if mass >= beta {
                    break;
                }
                selected.push(qi);
                mass += scen[qi].prob;
            }
            // When the enumerated set cannot reach β (deep cuts pruned
            // by the scenario cutoff), the best the scheme can do is
            // protect everything it enumerated — constraint (5) is then
            // met up to the un-enumerated residual mass.
            selected
        })
        .collect()
}

/// Builds and solves the subproblem LP for a fixed selection, returning
/// `(allocation, Φ, capacity duals, coverage duals keyed by (f, qi))`.
struct SubproblemResult {
    allocation: Vec<f64>,
    phi: f64,
    /// dual per capacity group (≤ 0 under the min convention).
    cap_duals: Vec<f64>,
    /// (flow, scenario, dual ≥ 0) for each coverage row.
    cov_duals: Vec<(usize, usize, f64)>,
}

fn solve_subproblem(problem: &TeProblem<'_>, delta: &[Vec<usize>]) -> SubproblemResult {
    let n_tunnels = problem.tunnels.len();
    let mut lp = LinearProgram::new();
    let a_vars: Vec<VarId> =
        (0..n_tunnels).map(|_| lp.add_var(0.0, f64::INFINITY, 0.0)).collect();
    let phi = lp.add_var(0.0, f64::INFINITY, 1.0);

    // Capacity rows (Eqn 3), per trunk group.
    let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
    for t in problem.tunnels.tunnels() {
        for g in problem.groups.groups_of_path(&t.path.links) {
            group_terms[g].push((a_vars[t.id.index()], 1.0));
        }
    }
    let mut cap_rows = Vec::with_capacity(problem.groups.len());
    for (g, terms) in group_terms.into_iter().enumerate() {
        cap_rows.push(lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g)));
    }

    // Coverage rows: Σ surviving a + d·Φ ≥ d for each selected (f, q).
    let mut cov_rows = Vec::new();
    for (f, selected) in delta.iter().enumerate() {
        let d = problem.flows[f].demand_gbps;
        if d <= 0.0 {
            continue;
        }
        for &qi in selected {
            let mut terms: Vec<(VarId, f64)> = problem
                .surviving(f, qi)
                .iter()
                .map(|&t| (a_vars[t.index()], 1.0))
                .collect();
            terms.push((phi, d));
            let row = lp.add_constraint(terms, Sense::Ge, d);
            cov_rows.push((f, qi, row));
        }
    }

    let sol = solve(&lp);
    assert_eq!(
        sol.status,
        SolveStatus::Optimal,
        "subproblem must be solvable (Φ = 1 is always feasible)"
    );
    SubproblemResult {
        allocation: a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        phi: sol.value(phi).max(0.0),
        cap_duals: cap_rows.iter().map(|&r| sol.duals[r.index()]).collect(),
        cov_duals: cov_rows
            .iter()
            .map(|&(f, qi, r)| (f, qi, sol.duals[r.index()].max(0.0)))
            .collect(),
    }
}

fn solve_heuristic(problem: &TeProblem<'_>, beta: f64) -> TeSolution {
    let delta = greedy_delta(problem, beta);
    let sp = solve_subproblem(problem, &delta);
    let allocation = polish_allocation(problem, &delta, sp.phi);
    TeSolution {
        allocation,
        max_loss: sp.phi,
        delta,
        lp_solves: 2,
        benders_iters: 0,
    }
}

/// Lexicographic second pass: with `Φ` fixed at its optimum, choose
/// among the optimal allocations the one that maximizes the
/// probability-weighted delivered fraction across the no-failure
/// scenario and the selected failure scenarios, then fills spare
/// capacity.
///
/// The min-Φ LP alone returns a *minimal* vertex — allocations exactly
/// meeting `(1 − Φ)d` — which would make flows artificially lossy even
/// in scenarios where spare capacity could cover them in full. Real TE
/// systems hand spare capacity back to the flows; this pass models
/// that, and because the weights are the scenario probabilities it is
/// a direct surrogate for the availability the evaluator measures.
fn polish_allocation(problem: &TeProblem<'_>, delta: &[Vec<usize>], phi: f64) -> Vec<f64> {
    /// Per flow, the failure scenarios (beyond q0) that get an explicit
    /// delivery variable — the most probable ones dominate availability.
    const POLISH_SCENARIOS_PER_FLOW: usize = 6;

    let n_tunnels = problem.tunnels.len();
    let total_demand: f64 = problem.flows.iter().map(|f| f.demand_gbps).sum();
    let mean_demand = (total_demand / problem.flows.len().max(1) as f64).max(1e-9);
    let p0 = problem.scenarios.scenarios[0].prob.max(1e-12);
    let mut lp = LinearProgram::new();
    let a_vars: Vec<VarId> =
        (0..n_tunnels).map(|_| lp.add_var(0.0, f64::INFINITY, -1e-6)).collect();
    // Fairness tie-break on the worst no-failure delivered fraction.
    let z = lp.add_var(0.0, 1.0, -0.01 * total_demand.max(1.0));

    // Capacity rows.
    let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
    for t in problem.tunnels.tunnels() {
        for g in problem.groups.groups_of_path(&t.path.links) {
            group_terms[g].push((a_vars[t.id.index()], 1.0));
        }
    }
    for (g, terms) in group_terms.into_iter().enumerate() {
        lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g));
    }
    // Coverage rows with Φ frozen (small slack absorbs LP round-off),
    // plus delivery variables s_{f,q} ≤ min(d_f, Σ surviving a).
    let phi_slack = phi + 1e-9;
    for (f, selected) in delta.iter().enumerate() {
        let d = problem.flows[f].demand_gbps;
        if d <= 0.0 {
            continue;
        }
        // Pick q0 plus the most probable selected failure scenarios.
        let mut with_delivery: Vec<usize> = selected.iter().copied().filter(|&q| q != 0).collect();
        with_delivery.sort_by(|&a, &b| {
            problem.scenarios.scenarios[b]
                .prob
                .partial_cmp(&problem.scenarios.scenarios[a].prob)
                .expect("finite")
        });
        with_delivery.truncate(POLISH_SCENARIOS_PER_FLOW);
        for &qi in selected {
            let cover: Vec<(VarId, f64)> = problem
                .surviving(f, qi)
                .iter()
                .map(|&t| (a_vars[t.index()], 1.0))
                .collect();
            lp.add_constraint(cover, Sense::Ge, d * (1.0 - phi_slack));
        }
        for &qi in std::iter::once(&0usize).chain(&with_delivery) {
            let weight = if qi == 0 {
                1.0
            } else {
                (problem.scenarios.scenarios[qi].prob / p0).min(1.0)
            };
            let s = lp.add_var(0.0, d, -weight * mean_demand / d);
            let mut terms: Vec<(VarId, f64)> = problem
                .surviving(f, qi)
                .iter()
                .map(|&t| (a_vars[t.index()], 1.0))
                .collect();
            terms.push((s, -1.0));
            lp.add_constraint(terms, Sense::Ge, 0.0);
            if qi == 0 {
                lp.add_constraint(vec![(s, 1.0), (z, -d)], Sense::Ge, 0.0);
            }
        }
    }
    let sol = solve(&lp);
    if sol.status != SolveStatus::Optimal {
        // Extremely defensive: fall back to the primary solution shape
        // by re-solving the plain subproblem.
        return solve_subproblem(problem, delta).allocation;
    }
    a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect()
}

/// One Benders optimality cut (Eqn 11): `Φ ≥ const + Σ w_{f,q} δ_{f,q}`.
struct Cut {
    constant: f64,
    /// (flow, scenario, weight ≥ 0).
    weights: Vec<(usize, usize, f64)>,
}

fn solve_benders(problem: &TeProblem<'_>, beta: f64, eps: f64, max_iters: usize) -> TeSolution {
    // Initialization (Algorithm 2 lines 2–4): δ = 1 for all rows we
    // materialize (scenario 0 + affecting), UB = 1, LB = 0, C = ∅.
    let all_delta: Vec<Vec<usize>> = (0..problem.flows.len())
        .map(|f| {
            let mut v = vec![0usize];
            v.extend_from_slice(problem.affecting(f));
            v
        })
        .collect();
    let mut delta = all_delta.clone();
    let mut ub = f64::INFINITY;
    let mut lb: f64 = 0.0;
    let mut cuts: Vec<Cut> = Vec::new();
    let mut best: Option<(Vec<f64>, f64, Vec<Vec<usize>>)> = None;
    let mut lp_solves = 0usize;
    let mut iters = 0usize;

    while iters < max_iters {
        iters += 1;
        // Step 1: subproblem with fixed δ.
        let sp = solve_subproblem(problem, &delta);
        lp_solves += 1;
        if sp.phi < ub {
            ub = sp.phi;
            best = Some((sp.allocation.clone(), sp.phi, delta.clone()));
        }
        // Optimality cut: Φ ≥ Σ_g y_g c_g + Σ v_{f,q} d_f δ_{f,q}.
        let constant: f64 = sp
            .cap_duals
            .iter()
            .enumerate()
            .map(|(g, &y)| y * problem.groups.capacity(g))
            .sum();
        let weights: Vec<(usize, usize, f64)> = sp
            .cov_duals
            .iter()
            .filter(|&&(_, _, v)| v > 1e-12)
            .map(|&(f, qi, v)| (f, qi, v * problem.flows[f].demand_gbps))
            .collect();
        cuts.push(Cut { constant, weights });
        if ub - lb <= eps {
            break;
        }
        // Step 2: master problem.
        let (new_delta, master_obj) = solve_master(problem, beta, &cuts, &all_delta);
        lp_solves += 1;
        lb = lb.max(master_obj);
        if ub - lb <= eps {
            break;
        }
        delta = new_delta;
    }
    let (_, phi, delta) = best.expect("at least one subproblem solved");
    let allocation = polish_allocation(problem, &delta, phi);
    TeSolution { allocation, max_loss: phi, delta, lp_solves: lp_solves + 1, benders_iters: iters }
}

/// Solves the Benders master: min Φ s.t. the availability knapsack per
/// flow and all optimality cuts, δ binary. Returns the new selection
/// and the master objective (a lower bound).
fn solve_master(
    problem: &TeProblem<'_>,
    beta: f64,
    cuts: &[Cut],
    all_delta: &[Vec<usize>],
) -> (Vec<Vec<usize>>, f64) {
    let scen = &problem.scenarios.scenarios;
    let mut lp = LinearProgram::new();
    let phi = lp.add_var(0.0, 1.0, 1.0);
    // δ variables for (flow, materialized scenario).
    let mut dvars: Vec<Vec<VarId>> = Vec::with_capacity(all_delta.len());
    for (f, qs) in all_delta.iter().enumerate() {
        let vars: Vec<VarId> = qs.iter().map(|_| lp.add_var(0.0, 1.0, 0.0)).collect();
        // Knapsack (constraint 5): Σ δ p + unaffecting mass ≥ β,
        // clamped to the attainable mass when enumeration fell short.
        let attainable: f64 = qs.iter().map(|&qi| scen[qi].prob).sum();
        let rhs = (beta - problem.unaffecting_mass(f)).min(attainable * (1.0 - 1e-12));
        let terms: Vec<(VarId, f64)> = vars
            .iter()
            .zip(qs)
            .map(|(&v, &qi)| (v, scen[qi].prob))
            .collect();
        lp.add_constraint(terms, Sense::Ge, rhs);
        dvars.push(vars);
    }
    // Cuts: Φ - Σ w δ ≥ const.
    for cut in cuts {
        let mut terms = vec![(phi, 1.0)];
        for &(f, qi, w) in &cut.weights {
            let pos = all_delta[f].iter().position(|&x| x == qi).expect("cut row exists");
            terms.push((dvars[f][pos], -w));
        }
        lp.add_constraint(terms, Sense::Ge, cut.constant);
    }
    let binaries: Vec<VarId> = dvars.iter().flatten().copied().collect();
    let opts = MipOptions { max_nodes: 4000, ..Default::default() };
    let r = solve_mip(&lp, &binaries, opts);
    let x = if r.status == MipStatus::Optimal || r.has_incumbent() {
        r.x.clone()
    } else {
        // Fallback: select everything (always feasible).
        let mut x = vec![0.0; lp.num_vars()];
        for v in &binaries {
            x[v.index()] = 1.0;
        }
        x
    };
    let delta: Vec<Vec<usize>> = all_delta
        .iter()
        .zip(&dvars)
        .map(|(qs, vars)| {
            qs.iter()
                .zip(vars)
                .filter(|&(_, &v)| x[v.index()] > 0.5)
                .map(|(&qi, _)| qi)
                .collect()
        })
        .collect();
    let obj = if r.has_incumbent() { r.objective } else { 0.0 };
    (delta, obj)
}

/// Full MIP via branch-and-bound: exact reference for small instances.
fn solve_bnb(problem: &TeProblem<'_>, beta: f64) -> TeSolution {
    match solve_bnb_with(problem, beta, MipOptions::default()) {
        Ok(sol) => sol,
        Err(e) => panic!("exact solve failed: {e:?}"),
    }
}

/// Branch-and-bound under explicit [`MipOptions`], surfacing budget
/// exhaustion and infeasibility instead of panicking.
fn solve_bnb_with(
    problem: &TeProblem<'_>,
    beta: f64,
    opts: MipOptions,
) -> Result<TeSolution, TeSolveError> {
    let scen = &problem.scenarios.scenarios;
    let n_tunnels = problem.tunnels.len();
    let mut lp = LinearProgram::new();
    let a_vars: Vec<VarId> =
        (0..n_tunnels).map(|_| lp.add_var(0.0, f64::INFINITY, 0.0)).collect();
    let phi = lp.add_var(0.0, 1.0, 1.0);
    // Capacity.
    let mut group_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); problem.groups.len()];
    for t in problem.tunnels.tunnels() {
        for g in problem.groups.groups_of_path(&t.path.links) {
            group_terms[g].push((a_vars[t.id.index()], 1.0));
        }
    }
    for (g, terms) in group_terms.into_iter().enumerate() {
        lp.add_constraint(terms, Sense::Le, problem.groups.capacity(g));
    }
    // δ vars + coverage + knapsack.
    let mut dvars: Vec<Vec<(usize, VarId)>> = Vec::new();
    for f in 0..problem.flows.len() {
        let d = problem.flows[f].demand_gbps;
        let mut rows = vec![0usize];
        rows.extend_from_slice(problem.affecting(f));
        let vars: Vec<(usize, VarId)> = rows
            .iter()
            .map(|&qi| (qi, lp.add_var(0.0, 1.0, 0.0)))
            .collect();
        for &(qi, dv) in &vars {
            // Σ surv a + d Φ − d δ ≥ 0.
            let mut terms: Vec<(VarId, f64)> = problem
                .surviving(f, qi)
                .iter()
                .map(|&t| (a_vars[t.index()], 1.0))
                .collect();
            terms.push((phi, d));
            terms.push((dv, -d));
            lp.add_constraint(terms, Sense::Ge, 0.0);
        }
        let attainable: f64 = vars.iter().map(|&(qi, _)| scen[qi].prob).sum();
        let rhs = (beta - problem.unaffecting_mass(f)).min(attainable * (1.0 - 1e-12));
        let terms: Vec<(VarId, f64)> =
            vars.iter().map(|&(qi, v)| (v, scen[qi].prob)).collect();
        lp.add_constraint(terms, Sense::Ge, rhs);
        dvars.push(vars);
    }
    let binaries: Vec<VarId> = dvars.iter().flatten().map(|&(_, v)| v).collect();
    let r = solve_mip(&lp, &binaries, opts);
    match r.status {
        MipStatus::Optimal => {}
        MipStatus::Infeasible => return Err(TeSolveError::Infeasible),
        // Φ ∈ [0, 1] bounds the objective, so Unbounded only arises
        // from a malformed program — report it as infeasibility rather
        // than aborting the controller.
        MipStatus::Unbounded => return Err(TeSolveError::Infeasible),
        MipStatus::NodeLimit => {
            return Err(TeSolveError::BudgetExceeded { nodes: r.nodes })
        }
    }
    let delta: Vec<Vec<usize>> = dvars
        .iter()
        .map(|vars| {
            vars.iter()
                .filter(|&&(_, v)| r.x[v.index()] > 0.5)
                .map(|&(qi, _)| qi)
                .collect()
        })
        .collect();
    let max_loss = r.x[phi.index()].max(0.0);
    let allocation = polish_allocation(problem, &delta, max_loss);
    Ok(TeSolution { allocation, max_loss, delta, lp_solves: r.nodes + 1, benders_iters: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{triangle, triangle_flows, TRIANGLE_PROBS};
    use crate::scenario::ScenarioSet;
    use prete_topology::TunnelSet;

    fn triangle_problem(
        probs: &[f64],
    ) -> (prete_topology::Network, Vec<Flow>, TunnelSet, ScenarioSet) {
        let net = triangle();
        let flows = triangle_flows();
        let tunnels = TunnelSet::initialize(&net, &flows, 2);
        let scenarios = ScenarioSet::enumerate(probs, 2, 0.0);
        (net, flows, tunnels, scenarios)
    }

    #[test]
    fn triangle_zero_loss_at_99() {
        // Per-flow β = 99 % is satisfiable at zero loss — but only if
        // the two flows exclude *different* failure scenarios (flow
        // s1→s2 drops the s1s3 cut, flow s1→s3 drops the s1s2 cut;
        // protecting both against the same cut oversubscribes the
        // detour link). The greedy heuristic picks by probability alone
        // and lands on Φ = 0.5; the exact solvers find Φ = 0. This is
        // precisely why the paper solves the MIP with Benders instead
        // of a one-shot selection.
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        for method in [SolveMethod::benders(), SolveMethod::BranchAndBound] {
            let sol = solve_te(&p, 0.99, method);
            assert!(sol.max_loss < 1e-6, "{method:?}: Φ = {}", sol.max_loss);
            // No-failure delivery is full demand for both flows.
            assert!((sol.delivered(&p, 0, 0) - 10.0).abs() < 1e-6);
            assert!((sol.delivered(&p, 1, 0) - 10.0).abs() < 1e-6);
        }
        // The heuristic stays a valid upper bound.
        let h = solve_te(&p, 0.99, SolveMethod::Heuristic);
        assert!(h.max_loss >= -1e-9);
    }

    #[test]
    fn triangle_protecting_all_singles_costs_capacity() {
        // Force protection against every single failure (β close to 1):
        // flow s1→s2 must survive the loss of fiber 0, which leaves only
        // the 2-hop detour — but the detour shares links with flow
        // s1→s3's protection, so Φ > 0 at these demands.
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = solve_te(&p, 0.999999, SolveMethod::BranchAndBound);
        assert!(sol.max_loss > 0.2, "Φ = {}", sol.max_loss);
        // All three solvers agree on the optimum.
        let h = solve_te(&p, 0.999999, SolveMethod::Heuristic);
        let b = solve_te(&p, 0.999999, SolveMethod::benders());
        assert!((h.max_loss - sol.max_loss).abs() < 1e-4, "heuristic {}", h.max_loss);
        assert!((b.max_loss - sol.max_loss).abs() < 1e-4, "benders {}", b.max_loss);
    }

    #[test]
    fn benders_matches_bnb_on_asymmetric_probs() {
        // Probabilities where greedy-by-probability is not trivially
        // optimal: one cheap-to-protect scenario is rare, one expensive
        // scenario is common.
        let (net, flows, tunnels, scenarios) = triangle_problem(&[0.02, 0.001, 0.02]);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        for beta in [0.97, 0.99, 0.995] {
            let exact = solve_te(&p, beta, SolveMethod::BranchAndBound);
            let bend = solve_te(&p, beta, SolveMethod::benders());
            assert!(
                (exact.max_loss - bend.max_loss).abs() < 1e-3,
                "beta {beta}: exact {} vs benders {}",
                exact.max_loss,
                bend.max_loss
            );
            // Heuristic is an upper bound (feasible but maybe
            // suboptimal).
            let heur = solve_te(&p, beta, SolveMethod::Heuristic);
            assert!(heur.max_loss >= exact.max_loss - 1e-6);
        }
    }

    #[test]
    fn allocation_respects_capacity() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = solve_te(&p, 0.999999, SolveMethod::Heuristic);
        // Recompute per-group load.
        let mut load = vec![0.0; p.groups.len()];
        for t in tunnels.tunnels() {
            for g in p.groups.groups_of_path(&t.path.links) {
                load[g] += sol.allocation[t.id.index()];
            }
        }
        for (g, &l) in load.iter().enumerate() {
            assert!(l <= p.groups.capacity(g) + 1e-6, "group {g}: {l}");
        }
    }

    #[test]
    fn oracle_certainty_forces_protection() {
        // Fiber 0 (s1s2) will fail for sure — the Figure 3(c) setting.
        // Flow s1→s2 must detour via s3 and flow s1→s3's direct link is
        // shared with that detour, so the 20 units of demand compress
        // to 10 of delivery: the optimal max loss is exactly 0.5 and
        // total throughput 10, matching the paper's oracle outcome.
        let (net, flows, tunnels, _) = triangle_problem(&TRIANGLE_PROBS);
        let scenarios = ScenarioSet::enumerate(&[1.0, 0.0, 0.0], 1, 0.0);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = solve_te(&p, 0.99, SolveMethod::BranchAndBound);
        assert!((sol.max_loss - 0.5).abs() < 1e-6, "Φ = {}", sol.max_loss);
        // Every scenario cuts fiber 0; total delivery is 10 units.
        for (qi, _) in scenarios.scenarios.iter().enumerate() {
            let total = sol.delivered(&p, 0, qi) + sol.delivered(&p, 1, qi);
            assert!((total - 10.0).abs() < 1e-5, "total {total}");
        }
    }

    #[test]
    fn loss_and_delivered_consistency() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        let sol = solve_te(&p, 0.99, SolveMethod::Heuristic);
        for f in 0..flows.len() {
            for q in 0..scenarios.len() {
                let l = sol.loss(&p, f, q);
                let d = sol.delivered(&p, f, q);
                assert!((0.0..=1.0).contains(&l));
                assert!((d - (1.0 - l) * flows[f].demand_gbps).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn affecting_sets_are_correct() {
        let (net, flows, tunnels, scenarios) = triangle_problem(&TRIANGLE_PROBS);
        let p = TeProblem::new(&net, &flows, &tunnels, &scenarios);
        // Flow 0 (s1→s2) has tunnels s1s2 and s1s3s2: every single-cut
        // scenario kills one of them.
        for f in 0..flows.len() {
            for &qi in p.affecting(f) {
                let all = tunnels.of_flow(flows[f].id).len();
                assert!(p.surviving(f, qi).len() < all);
            }
        }
    }
}
